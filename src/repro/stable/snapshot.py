"""Immutable, structurally-shared snapshots for stable storage.

The deep-copy stable storage pays O(state) on *every* ``put`` and ``get``:
each checkpoint operation copies the full application state twice, which
caps the scale sweeps long before the hardware does.  This module replaces
copying with *freezing*:

* :func:`freeze` converts a JSON-shaped value (dicts, lists, tuples,
  scalars) into an immutable view — :class:`FrozenDict` / :class:`FrozenList`
  nodes whose mutating operations raise.  Freezing an already-frozen node is
  O(1), so states that reuse unchanged sub-trees pay only for what changed
  (copy-on-write).  A frozen value can be handed out by ``get`` without any
  copy: readers cannot corrupt the "disk".
* :func:`thaw` is the explicit escape hatch: it produces a plain, mutable
  deep copy for callers that really want to edit a snapshot.
* :class:`ChunkStore` interns frozen chunks by content hash, so equal
  sub-trees — across checkpoints, slots and processes sharing a backend —
  collapse to one shared representation.
* :func:`diff` / :func:`patch` delta-encode between successive snapshots of
  the same key (the paper's two-slot ``oldchkpt``/``newchkpt`` discipline
  makes consecutive checkpoints of one process natural delta partners).
* :class:`SnapshotEngine` bundles the above behind the two calls the storage
  layer makes (``store``/``load``) and keeps the dedup/delta statistics the
  E-PERF benchmark reports.

Content hashes are Python-hash based (equality-consistent, cached per node)
and therefore valid within one process — exactly the lifetime of an
in-memory backend.  :func:`digest` provides a process-independent canonical
digest for artifacts and tests.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro import _native
from repro.errors import StableStorageError

_SCALARS = (str, int, float, bool, type(None))


def _blocked(name: str):
    def method(self, *args, **kwargs):
        raise TypeError(
            f"snapshot is frozen: {type(self).__name__}.{name}() is not allowed; "
            "thaw() the value to get a mutable copy"
        )

    method.__name__ = name
    return method


class FrozenDict(dict):
    """An immutable dict view produced by :func:`freeze`.

    Subclasses ``dict`` so it stays JSON-serialisable, ``**``-unpackable and
    equality-compatible with plain dicts; every mutator raises instead.
    Hashable (content hash, cached), so frozen chunks can key intern pools.
    """

    __setitem__ = _blocked("__setitem__")
    __delitem__ = _blocked("__delitem__")
    __ior__ = _blocked("__ior__")
    clear = _blocked("clear")
    pop = _blocked("pop")
    popitem = _blocked("popitem")
    setdefault = _blocked("setdefault")
    update = _blocked("update")

    def __hash__(self) -> int:  # type: ignore[override]
        cached = self.__dict__.get("_content_hash")
        if cached is None:
            cached = hash(frozenset((hash(k), content_hash(v)) for k, v in self.items()))
            self.__dict__["_content_hash"] = cached
        return cached

    def __reduce__(self):
        return (FrozenDict, (dict(self),))

    def __copy__(self) -> "FrozenDict":
        return self

    def __deepcopy__(self, memo) -> "FrozenDict":
        return self


class FrozenList(list):
    """An immutable list view produced by :func:`freeze` (see FrozenDict)."""

    __setitem__ = _blocked("__setitem__")
    __delitem__ = _blocked("__delitem__")
    __iadd__ = _blocked("__iadd__")
    __imul__ = _blocked("__imul__")
    append = _blocked("append")
    clear = _blocked("clear")
    extend = _blocked("extend")
    insert = _blocked("insert")
    pop = _blocked("pop")
    remove = _blocked("remove")
    reverse = _blocked("reverse")
    sort = _blocked("sort")

    def __hash__(self) -> int:  # type: ignore[override]
        cached = self.__dict__.get("_content_hash")
        if cached is None:
            cached = hash(("frozen-list",) + tuple(content_hash(v) for v in self))
            self.__dict__["_content_hash"] = cached
        return cached

    def __reduce__(self):
        return (FrozenList, (list(self),))

    def __copy__(self) -> "FrozenList":
        return self

    def __deepcopy__(self, memo) -> "FrozenList":
        return self


def freeze(value: Any) -> Any:
    """Return an immutable view of ``value`` (already-frozen nodes pass through).

    The pass-through is what makes the engine copy-on-write: a caller that
    rebuilds only the changed part of a state and reuses frozen sub-trees
    pays O(changed), not O(state).  Mutable containers are converted (never
    aliased), so later mutation of the original cannot leak into storage.
    """
    kind = type(value)
    if kind in (FrozenDict, FrozenList) or kind in _SCALARS:
        return value
    if kind is dict:
        return FrozenDict((k, freeze(v)) for k, v in value.items())
    if kind in (list, tuple):
        frozen = [freeze(v) for v in value]
        return tuple(frozen) if kind is tuple else FrozenList(frozen)
    # Subclasses of the shapes above (rare) take the isinstance path.
    if isinstance(value, (FrozenDict, FrozenList)):
        return value
    if isinstance(value, dict):
        return FrozenDict((k, freeze(v)) for k, v in value.items())
    if isinstance(value, tuple):
        return tuple(freeze(v) for v in value)
    if isinstance(value, list):
        return FrozenList(freeze(v) for v in value)
    if isinstance(value, _SCALARS):
        return value
    raise StableStorageError(
        f"cannot freeze {type(value).__name__!r}: stable values must be "
        "JSON-shaped (dict/list/tuple/str/int/float/bool/None)"
    )


def thaw(value: Any) -> Any:
    """Deep, mutable copy of a (possibly frozen) snapshot value.

    The explicit counterpart of the zero-copy ``get``: readers that need to
    edit call ``thaw`` and pay the copy exactly once, by choice.
    """
    if isinstance(value, dict):
        return {k: thaw(v) for k, v in value.items()}
    if isinstance(value, tuple):
        return tuple(thaw(v) for v in value)
    if isinstance(value, list):
        return [thaw(v) for v in value]
    return value


def content_hash(value: Any) -> int:
    """Equality-consistent structural hash, cached on frozen nodes."""
    if isinstance(value, (FrozenDict, FrozenList)):
        return hash(value)
    if isinstance(value, tuple):
        return hash(tuple(content_hash(v) for v in value))
    try:
        return hash(value)
    except TypeError:
        raise StableStorageError(
            f"cannot content-hash mutable {type(value).__name__!r}; freeze() it first"
        ) from None


def digest(value: Any) -> str:
    """Process-independent canonical digest (blake2b over canonical JSON)."""
    payload = json.dumps(value, sort_keys=True, separators=(",", ":"), default=_digest_default)
    return hashlib.blake2b(payload.encode("utf-8"), digest_size=16).hexdigest()


def _digest_default(value: Any) -> Any:  # pragma: no cover - defensive
    raise StableStorageError(f"cannot digest {type(value).__name__!r}")


class ChunkStore:
    """Content-hash interning pool for frozen chunks.

    ``intern`` maps an equal chunk to one canonical instance, so successive
    checkpoints carrying mostly-unchanged state collapse to shared memory.
    Interning an already-canonical instance is a pure dict hit (the content
    hash is cached on the node).
    """

    def __init__(self) -> None:
        self._pool: Dict[Any, Any] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._pool)

    def intern(self, frozen: Any) -> Any:
        if not isinstance(frozen, (FrozenDict, FrozenList)):
            return frozen  # scalars and tuples are cheap enough to not pool
        canonical = self._pool.get(frozen)
        if canonical is not None:
            self.hits += 1
            return canonical
        self._pool[frozen] = frozen
        self.misses += 1
        return frozen

    def clear(self) -> None:
        self._pool.clear()


# ----------------------------------------------------------------------
# Delta encoding between successive snapshots
# ----------------------------------------------------------------------
# Deltas are JSON-able tagged tuples:
#   ("=",)                          — unchanged
#   ("!", value)                    — full replacement
#   ("d", {key: delta}, [deleted])  — dict edit (added keys use ("!", v))
#   ("l", prefix, suffix, [items])  — list edit: keep prefix/suffix, replace middle

def diff(base: Any, target: Any) -> Tuple:
    """Structural delta turning ``base`` into ``target`` (see :func:`patch`)."""
    if base is target or base == target:
        return ("=",)
    if isinstance(base, dict) and isinstance(target, dict):
        edits = {}
        for key, value in target.items():
            if key not in base:
                edits[key] = ("!", value)
            elif base[key] != value:
                edits[key] = diff(base[key], value)
        deleted = sorted(k for k in base if k not in target)
        return ("d", edits, deleted)
    if isinstance(base, (list, tuple)) and isinstance(target, (list, tuple)):
        limit = min(len(base), len(target))
        prefix = 0
        while prefix < limit and base[prefix] == target[prefix]:
            prefix += 1
        suffix = 0
        while suffix < limit - prefix and base[-1 - suffix] == target[-1 - suffix]:
            suffix += 1
        middle = list(target[prefix:len(target) - suffix])
        return ("l", prefix, suffix, middle)
    return ("!", target)


def patch(base: Any, delta) -> Any:
    """Apply a :func:`diff` delta to ``base``; returns a frozen value."""
    op = delta[0]
    if op == "=":
        return freeze(base)
    if op == "!":
        return freeze(delta[1])
    if op == "d":
        _, edits, deleted = delta
        if not isinstance(base, dict):
            raise StableStorageError("dict delta applied to non-dict base")
        dropped = set(deleted)
        merged = {k: v for k, v in base.items() if k not in dropped and k not in edits}
        for key, sub in edits.items():
            merged[key] = patch(base.get(key), sub)
        return freeze(merged)
    if op == "l":
        _, prefix, suffix, middle = delta
        if not isinstance(base, (list, tuple)):
            raise StableStorageError("list delta applied to non-list base")
        tail = list(base[len(base) - suffix:]) if suffix else []
        return freeze(list(base[:prefix]) + list(middle) + tail)
    raise StableStorageError(f"unknown delta op {op!r}")


def delta_size(delta) -> int:
    """Size of a delta's canonical JSON encoding, in bytes."""
    return len(json.dumps(delta, sort_keys=True, separators=(",", ":")))


class SnapshotEngine:
    """Freeze + intern + (optionally) delta-account values per storage key.

    The engine is the single integration point the in-memory backend needs:
    ``store`` returns the canonical frozen value to keep, ``load`` is the
    zero-copy read.  With ``track_deltas`` on, each overwrite of a key is
    also diffed against the previous snapshot and the encoded sizes
    accumulated — the measurement E-PERF reports as the incremental-
    checkpoint win (the stored representation itself stays a full, directly
    restorable snapshot: recovery never needs to replay a delta chain).
    """

    def __init__(self, intern: bool = True, track_deltas: bool = False):
        self.chunks = ChunkStore() if intern else None
        self.track_deltas = track_deltas
        self._last: Dict[str, Any] = {}
        self.full_bytes = 0
        self.delta_bytes = 0

    def store(self, key: str, value: Any) -> Any:
        frozen = freeze(value)
        if self.chunks is not None:
            frozen = self.chunks.intern(frozen)
        if self.track_deltas:
            previous = self._last.get(key)
            if previous is not None:
                self.full_bytes += delta_size(("!", frozen))
                self.delta_bytes += delta_size(diff(previous, frozen))
            self._last[key] = frozen
        return frozen

    def forget(self, key: str) -> None:
        self._last.pop(key, None)

    def stats(self) -> Dict[str, Any]:
        stats: Dict[str, Any] = {
            "full_bytes": self.full_bytes,
            "delta_bytes": self.delta_bytes,
        }
        if self.chunks is not None:
            stats.update(
                chunk_hits=self.chunks.hits,
                chunk_misses=self.chunks.misses,
                chunks=len(self.chunks),
            )
        return stats


def iter_chunks(value: Any) -> Iterator[Any]:
    """Yield every frozen container node in ``value`` (root first).

    Debugging/measurement helper: the chunk census behind the structural-
    sharing numbers.
    """
    stack: List[Any] = [value]
    while stack:
        node = stack.pop()
        if isinstance(node, (FrozenDict, FrozenList)):
            yield node
            children: Optional[Any] = node.values() if isinstance(node, dict) else node
            stack.extend(children)
        elif isinstance(node, tuple):
            stack.extend(node)


# ----------------------------------------------------------------------
# Native freeze/diff selection (see repro._native and DESIGN.md §14)
# ----------------------------------------------------------------------

# Interpreted implementations under stable names: the probe compares against
# them and E-NATIVE benchmarks both backends in one process.  Everything that
# calls ``freeze``/``diff``/``content_hash`` through this module's globals —
# patch(), FrozenDict.__hash__, SnapshotEngine, the storage backends — picks
# up the compiled versions automatically after the rebind below.
_py_freeze = freeze
_py_thaw = thaw
_py_content_hash = content_hash
_py_diff = diff

_NATIVE: Optional[Any] = None


def native_active() -> bool:
    """True when the compiled snapshot path passed its probe and is in use."""
    return _NATIVE is not None


def _probe_native(module: Any) -> Optional[str]:
    """Self-check the compiled path against the interpreted one; None = OK."""
    sample = {
        "a": [1, 2.5, "x", None, True, False],
        "b": {"nested": (1, (2, [3, {}])), "empty": {}},
        "c": [[], {}, (), "s", -(2**70)],
    }
    frozen_py = _py_freeze(sample)
    frozen_nat = module.freeze(sample)
    if frozen_nat != frozen_py or type(frozen_nat) is not FrozenDict:
        return "freeze mismatch"
    if type(frozen_nat["a"]) is not FrozenList or type(frozen_nat["b"]["nested"]) is not tuple:
        return "freeze container-type mismatch"
    if module.freeze(frozen_nat) is not frozen_nat:
        return "frozen pass-through mismatch"
    if module.content_hash(frozen_nat) != _py_content_hash(frozen_py):
        return "content-hash mismatch"
    if hash(frozen_nat) != hash(frozen_py):  # via the shared _content_hash cache
        return "cached-hash mismatch"
    thawed = module.thaw(frozen_nat)
    if thawed != sample or type(thawed) is not dict or type(thawed["a"]) is not list:
        return "thaw mismatch"
    base = _py_freeze({"x": [1, 2, 3], "y": {"k": 1}, "z": "keep"})
    target = _py_freeze({"x": [1, 5, 3, 4], "y": {"k": 2}, "w": 9})
    if module.diff(base, target) != _py_diff(base, target):
        return "diff mismatch"
    if module.diff(base, base) != ("=",):
        return "diff identity mismatch"
    if patch(base, module.diff(base, target)) != target:
        return "patch round-trip mismatch"
    try:
        module.freeze({1, 2})
    except StableStorageError:
        pass
    else:
        return "freeze error-contract mismatch"
    return None


def _install_native() -> None:
    """Load, configure, probe and (on success) switch in the compiled path."""
    global _NATIVE, freeze, thaw, content_hash, diff
    module = _native.load("snapshot")
    if module is None:
        return
    try:
        module.configure(
            frozen_dict=FrozenDict,
            frozen_list=FrozenList,
            storage_error=StableStorageError,
        )
        problem = _probe_native(module)
    except Exception as exc:  # noqa: BLE001 - any probe failure means fallback
        problem = f"{type(exc).__name__}: {exc}"
    if problem is not None:
        _native.reject("snapshot", problem)
        return
    _NATIVE = module
    freeze = module.freeze
    thaw = module.thaw
    content_hash = module.content_hash
    diff = module.diff


_install_native()
