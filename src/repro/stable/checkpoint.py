"""The ``oldchkpt`` / ``newchkpt`` checkpoint slot pair (paper Section 3).

"Each process saves at most two most recent checkpoints (called *oldchkpt*
and *newchkpt*) in stable storage.  *newchkpt* is an uncommitted checkpoint.
*oldchkpt* represents the latest version of the committed checkpoint."

:class:`CheckpointStore` wraps a :class:`~repro.stable.storage.StableStorage`
and exposes exactly the operations the algorithm performs:

* :meth:`take_new` — write an uncommitted ``newchkpt``;
* :meth:`commit_new` — ``oldchkpt := newchkpt; newchkpt := nil``;
* :meth:`discard_new` — ``newchkpt := nil`` (abort);
* the :attr:`oldchkpt` / :attr:`newchkpt` accessors.

The Section 3.5.3 extension needs a *stack* of uncommitted checkpoints
(``newchkpt_a .. newchkpt_l``); :class:`MultiCheckpointStore` provides that
generalisation while keeping the same committed-slot semantics.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.errors import StableStorageError
from repro.stable.storage import InMemoryStableStorage, StableStorage
from repro.types import CheckpointRecord, Seq, SimTime


def _encode(record: CheckpointRecord) -> dict:
    return {
        "seq": record.seq,
        "state": record.state,
        "committed": record.committed,
        "made_at": record.made_at,
        "meta": record.meta,
    }


def _decode(raw: Optional[dict]) -> Optional[CheckpointRecord]:
    if raw is None:
        return None
    return CheckpointRecord(
        seq=raw["seq"],
        state=raw["state"],
        committed=raw["committed"],
        made_at=raw["made_at"],
        meta=raw.get("meta", {}),
    )


class CheckpointStore:
    """Two-slot stable checkpoint storage for one process."""

    def __init__(self, storage: Optional[StableStorage] = None, namespace: str = "ckpt"):
        self._storage = storage or InMemoryStableStorage()
        self._ns = namespace

    # -- slot accessors -------------------------------------------------
    @property
    def oldchkpt(self) -> Optional[CheckpointRecord]:
        """The latest committed checkpoint, or ``None`` before the first."""
        return _decode(self._storage.get(f"{self._ns}.old"))

    @property
    def newchkpt(self) -> Optional[CheckpointRecord]:
        """The pending uncommitted checkpoint, or ``None``."""
        return _decode(self._storage.get(f"{self._ns}.new"))

    # -- transitions -----------------------------------------------------
    def initialize(self, state: Any, made_at: SimTime = 0.0, seq: Seq = 1) -> CheckpointRecord:
        """Install the initial committed checkpoint (process birth).

        The paper's processes always have a committed checkpoint to fall back
        to; we model process start as an implicit committed checkpoint of the
        initial state.  Its sequence number defaults to 1, matching the
        paper's figures (message labels then start at 1, keeping label 0
        free as the "no messages received" sentinel for ``max_ij``).
        """
        record = CheckpointRecord(seq=seq, state=state, committed=True, made_at=made_at)
        self._storage.put(f"{self._ns}.old", _encode(record))
        self._storage.delete(f"{self._ns}.new")
        return record

    def take_new(self, seq: Seq, state: Any, made_at: SimTime = 0.0, **meta: Any) -> CheckpointRecord:
        """Write the uncommitted ``newchkpt`` (fails if one is pending)."""
        if self.newchkpt is not None:
            raise StableStorageError("newchkpt already exists; commit or discard it first")
        record = CheckpointRecord(seq=seq, state=state, committed=False, made_at=made_at, meta=meta)
        self._storage.put(f"{self._ns}.new", _encode(record))
        return record

    def commit_new(self) -> CheckpointRecord:
        """``oldchkpt := newchkpt; newchkpt := nil``; returns the new oldchkpt."""
        pending = self.newchkpt
        if pending is None:
            raise StableStorageError("no newchkpt to commit")
        pending.committed = True
        self._storage.put(f"{self._ns}.old", _encode(pending))
        self._storage.delete(f"{self._ns}.new")
        return pending

    def discard_new(self) -> None:
        """``newchkpt := nil`` (abort); no-op if none pending."""
        self._storage.delete(f"{self._ns}.new")


class MultiCheckpointStore:
    """Stack of uncommitted checkpoints for the Section 3.5.3 extension.

    Uncommitted checkpoints ``newchkpt_a .. newchkpt_l`` are kept in creation
    order.  Committing checkpoint ``h`` promotes it to ``oldchkpt`` and
    discards ``a .. h`` (they are all older and now superseded), matching the
    paper: "when newchkpt_a .. newchkpt_h all commit, oldchkpt is updated
    with the value of newchkpt_h, and newchkpt_a .. newchkpt_h are
    discarded."  (We commit on the first decision for ``h`` since each commit
    decision certifies the consistency of everything up to ``h``.)
    """

    def __init__(self, storage: Optional[StableStorage] = None, namespace: str = "ckpt"):
        self._storage = storage or InMemoryStableStorage()
        self._ns = namespace

    # -- accessors -------------------------------------------------------
    @property
    def oldchkpt(self) -> Optional[CheckpointRecord]:
        return _decode(self._storage.get(f"{self._ns}.old"))

    @property
    def pending(self) -> List[CheckpointRecord]:
        """Uncommitted checkpoints, oldest first."""
        raw = self._storage.get(f"{self._ns}.pending", [])
        return [_decode(r) for r in raw]

    @property
    def newest(self) -> Optional[CheckpointRecord]:
        """The most recent uncommitted checkpoint (``newchkpt_l``), if any."""
        pending = self.pending
        return pending[-1] if pending else None

    def find(self, seq: Seq) -> Optional[CheckpointRecord]:
        """The pending checkpoint with sequence number ``seq``, if any."""
        for record in self.pending:
            if record.seq == seq:
                return record
        return None

    # -- transitions -----------------------------------------------------
    def initialize(self, state: Any, made_at: SimTime = 0.0, seq: Seq = 1) -> CheckpointRecord:
        record = CheckpointRecord(seq=seq, state=state, committed=True, made_at=made_at)
        self._storage.put(f"{self._ns}.old", _encode(record))
        self._storage.put(f"{self._ns}.pending", [])
        return record

    def _save_pending(self, pending: List[CheckpointRecord]) -> None:
        self._storage.put(f"{self._ns}.pending", [_encode(r) for r in pending])

    def push(self, seq: Seq, state: Any, made_at: SimTime = 0.0, **meta: Any) -> CheckpointRecord:
        """Append a new uncommitted checkpoint (must be newer than the last)."""
        pending = self.pending
        if pending and seq <= pending[-1].seq:
            raise StableStorageError(
                f"checkpoint seq {seq} not newer than pending seq {pending[-1].seq}"
            )
        record = CheckpointRecord(seq=seq, state=state, committed=False, made_at=made_at, meta=meta)
        pending.append(record)
        self._save_pending(pending)
        return record

    def commit_through(self, seq: Seq) -> CheckpointRecord:
        """Commit the pending checkpoint with ``seq`` and discard older ones."""
        pending = self.pending
        target = None
        for record in pending:
            if record.seq == seq:
                target = record
                break
        if target is None:
            raise StableStorageError(f"no pending checkpoint with seq {seq}")
        target.committed = True
        self._storage.put(f"{self._ns}.old", _encode(target))
        self._save_pending([r for r in pending if r.seq > seq])
        return target

    def discard_from(self, seq: Seq) -> List[CheckpointRecord]:
        """Discard the pending checkpoint with ``seq`` and everything newer.

        Used by the extension's rollback cases 2.1/2.2, which abort
        ``newchkpt_h .. newchkpt_l``.  Returns the discarded records.
        """
        pending = self.pending
        kept = [r for r in pending if r.seq < seq]
        dropped = [r for r in pending if r.seq >= seq]
        self._save_pending(kept)
        return dropped

    def discard_all(self) -> List[CheckpointRecord]:
        """Discard every pending checkpoint."""
        pending = self.pending
        self._save_pending([])
        return pending
