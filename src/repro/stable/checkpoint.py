"""The ``oldchkpt`` / ``newchkpt`` checkpoint slot pair (paper Section 3).

"Each process saves at most two most recent checkpoints (called *oldchkpt*
and *newchkpt*) in stable storage.  *newchkpt* is an uncommitted checkpoint.
*oldchkpt* represents the latest version of the committed checkpoint."

:class:`CheckpointStore` wraps a :class:`~repro.stable.storage.StableStorage`
and exposes exactly the operations the algorithm performs:

* :meth:`take_new` — write an uncommitted ``newchkpt``;
* :meth:`commit_new` — ``oldchkpt := newchkpt; newchkpt := nil``;
* :meth:`discard_new` — ``newchkpt := nil`` (abort);
* the :attr:`oldchkpt` / :attr:`newchkpt` accessors.

The Section 3.5.3 extension needs a *stack* of uncommitted checkpoints
(``newchkpt_a .. newchkpt_l``); :class:`MultiCheckpointStore` provides that
generalisation while keeping the same committed-slot semantics.

Fast paths
----------
Slot accessors are hot (every b1 guard and every fan-out consults them), so
decoded records are cached per slot and invalidated on transitions.  The
cache is validated against the *identity* of the stored raw value: a
snapshot-backed storage returns the same frozen object until the slot is
overwritten, so even a write that bypasses this store (tests do this to
tamper with records) is picked up.  Existence checks (:attr:`has_new`,
:attr:`pending_count`) never deserialise state, and the multi-store keeps
one storage record per pending checkpoint so pushing, committing or
discarding touches only the affected stack entries — never a re-serialise
of the whole pending stack.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import StableStorageError
from repro.stable.storage import InMemoryStableStorage, StableStorage
from repro.types import CheckpointRecord, Seq, SimTime


def _encode(record: CheckpointRecord) -> dict:
    return {
        "seq": record.seq,
        "state": record.state,
        "committed": record.committed,
        "made_at": record.made_at,
        "meta": record.meta,
    }


def _decode(raw: Optional[dict]) -> Optional[CheckpointRecord]:
    if raw is None:
        return None
    return CheckpointRecord(
        seq=raw["seq"],
        state=raw["state"],
        committed=raw["committed"],
        made_at=raw["made_at"],
        meta=raw.get("meta", {}),
    )


class _SlotCache:
    """Identity-validated decode cache shared by both stores."""

    def __init__(self, storage: StableStorage):
        self._storage = storage
        self._cache: Dict[str, Tuple[Any, CheckpointRecord]] = {}

    def load(self, key: str) -> Optional[CheckpointRecord]:
        raw = self._storage.get(key)
        if raw is None:
            self._cache.pop(key, None)
            return None
        hit = self._cache.get(key)
        if hit is not None and hit[0] is raw:
            return hit[1]
        record = _decode(raw)
        self._cache[key] = (raw, record)
        return record

    def invalidate(self, *keys: str) -> None:
        for key in keys:
            self._cache.pop(key, None)


class CheckpointStore:
    """Two-slot stable checkpoint storage for one process."""

    def __init__(self, storage: Optional[StableStorage] = None, namespace: str = "ckpt"):
        self._storage = storage or InMemoryStableStorage()
        self._ns = namespace
        self._old_key = f"{namespace}.old"
        self._new_key = f"{namespace}.new"
        self._slots = _SlotCache(self._storage)

    # -- slot accessors -------------------------------------------------
    @property
    def oldchkpt(self) -> Optional[CheckpointRecord]:
        """The latest committed checkpoint, or ``None`` before the first."""
        return self._slots.load(self._old_key)

    @property
    def newchkpt(self) -> Optional[CheckpointRecord]:
        """The pending uncommitted checkpoint, or ``None``."""
        return self._slots.load(self._new_key)

    @property
    def has_new(self) -> bool:
        """``newchkpt != nil``, without deserialising the pending state."""
        return self._new_key in self._storage

    # -- transitions -----------------------------------------------------
    def initialize(self, state: Any, made_at: SimTime = 0.0, seq: Seq = 1) -> CheckpointRecord:
        """Install the initial committed checkpoint (process birth).

        The paper's processes always have a committed checkpoint to fall back
        to; we model process start as an implicit committed checkpoint of the
        initial state.  Its sequence number defaults to 1, matching the
        paper's figures (message labels then start at 1, keeping label 0
        free as the "no messages received" sentinel for ``max_ij``).
        """
        record = CheckpointRecord(seq=seq, state=state, committed=True, made_at=made_at)
        self._storage.put(self._old_key, _encode(record))
        self._storage.delete(self._new_key)
        self._slots.invalidate(self._old_key, self._new_key)
        return record

    def take_new(self, seq: Seq, state: Any, made_at: SimTime = 0.0, **meta: Any) -> CheckpointRecord:
        """Write the uncommitted ``newchkpt`` (fails if one is pending)."""
        if self.has_new:
            raise StableStorageError("newchkpt already exists; commit or discard it first")
        record = CheckpointRecord(seq=seq, state=state, committed=False, made_at=made_at, meta=meta)
        self._storage.put(self._new_key, _encode(record))
        self._slots.invalidate(self._new_key)
        return record

    def commit_new(self) -> CheckpointRecord:
        """``oldchkpt := newchkpt; newchkpt := nil``; returns the new oldchkpt."""
        pending = self.newchkpt
        if pending is None:
            raise StableStorageError("no newchkpt to commit")
        pending.committed = True
        self._storage.put(self._old_key, _encode(pending))
        self._storage.delete(self._new_key)
        self._slots.invalidate(self._old_key, self._new_key)
        return pending

    def discard_new(self) -> None:
        """``newchkpt := nil`` (abort); no-op if none pending."""
        self._storage.delete(self._new_key)
        self._slots.invalidate(self._new_key)


class MultiCheckpointStore:
    """Stack of uncommitted checkpoints for the Section 3.5.3 extension.

    Uncommitted checkpoints ``newchkpt_a .. newchkpt_l`` are kept in creation
    order.  Committing checkpoint ``h`` promotes it to ``oldchkpt`` and
    discards ``a .. h`` (they are all older and now superseded), matching the
    paper: "when newchkpt_a .. newchkpt_h all commit, oldchkpt is updated
    with the value of newchkpt_h, and newchkpt_a .. newchkpt_h are
    discarded."  (We commit on the first decision for ``h`` since each commit
    decision certifies the consistency of everything up to ``h``.)

    Storage layout: ``<ns>.old`` (committed slot), ``<ns>.pending`` (the
    stack *index* — just the sequence numbers, oldest first) and one
    ``<ns>.pending.<seq>`` record per uncommitted checkpoint, so stack
    operations re-serialise only the entries they actually touch.
    """

    def __init__(self, storage: Optional[StableStorage] = None, namespace: str = "ckpt"):
        self._storage = storage or InMemoryStableStorage()
        self._ns = namespace
        self._old_key = f"{namespace}.old"
        self._index_key = f"{namespace}.pending"
        self._slots = _SlotCache(self._storage)

    def _entry_key(self, seq: Seq) -> str:
        return f"{self._ns}.pending.{seq}"

    # -- accessors -------------------------------------------------------
    @property
    def oldchkpt(self) -> Optional[CheckpointRecord]:
        return self._slots.load(self._old_key)

    @property
    def pending_seqs(self) -> List[Seq]:
        """Sequence numbers of the uncommitted checkpoints, oldest first."""
        return list(self._storage.get(self._index_key, ()))

    @property
    def pending_count(self) -> int:
        """Depth of the uncommitted stack, without decoding any state."""
        return len(self._storage.get(self._index_key, ()))

    @property
    def pending(self) -> List[CheckpointRecord]:
        """Uncommitted checkpoints, oldest first."""
        return [self._entry(seq) for seq in self.pending_seqs]

    def _entry(self, seq: Seq) -> CheckpointRecord:
        record = self._slots.load(self._entry_key(seq))
        if record is None:
            raise StableStorageError(f"pending checkpoint record {seq} missing from storage")
        return record

    @property
    def newest(self) -> Optional[CheckpointRecord]:
        """The most recent uncommitted checkpoint (``newchkpt_l``), if any."""
        seqs = self.pending_seqs
        return self._entry(seqs[-1]) if seqs else None

    def find(self, seq: Seq) -> Optional[CheckpointRecord]:
        """The pending checkpoint with sequence number ``seq``, if any."""
        if seq not in self.pending_seqs:
            return None
        return self._entry(seq)

    # -- transitions -----------------------------------------------------
    def initialize(self, state: Any, made_at: SimTime = 0.0, seq: Seq = 1) -> CheckpointRecord:
        record = CheckpointRecord(seq=seq, state=state, committed=True, made_at=made_at)
        self._storage.put(self._old_key, _encode(record))
        self._drop_entries(self.pending_seqs)
        self._storage.put(self._index_key, [])
        self._slots.invalidate(self._old_key)
        return record

    def _drop_entries(self, seqs: List[Seq]) -> None:
        for seq in seqs:
            self._storage.delete(self._entry_key(seq))
            self._slots.invalidate(self._entry_key(seq))

    def push(self, seq: Seq, state: Any, made_at: SimTime = 0.0, **meta: Any) -> CheckpointRecord:
        """Append a new uncommitted checkpoint (must be newer than the last).

        Touches exactly one entry record plus the (tiny) stack index; the
        existing entries are not re-serialised.
        """
        seqs = self.pending_seqs
        if seqs and seq <= seqs[-1]:
            raise StableStorageError(
                f"checkpoint seq {seq} not newer than pending seq {seqs[-1]}"
            )
        record = CheckpointRecord(seq=seq, state=state, committed=False, made_at=made_at, meta=meta)
        self._storage.put(self._entry_key(seq), _encode(record))
        self._slots.invalidate(self._entry_key(seq))
        self._storage.put(self._index_key, seqs + [seq])
        return record

    def commit_through(self, seq: Seq) -> CheckpointRecord:
        """Commit the pending checkpoint with ``seq`` and discard older ones."""
        seqs = self.pending_seqs
        if seq not in seqs:
            raise StableStorageError(f"no pending checkpoint with seq {seq}")
        target = self._entry(seq)
        target.committed = True
        self._storage.put(self._old_key, _encode(target))
        self._drop_entries([s for s in seqs if s <= seq])
        self._storage.put(self._index_key, [s for s in seqs if s > seq])
        self._slots.invalidate(self._old_key)
        return target

    def discard_from(self, seq: Seq) -> List[CheckpointRecord]:
        """Discard the pending checkpoint with ``seq`` and everything newer.

        Used by the extension's rollback cases 2.1/2.2, which abort
        ``newchkpt_h .. newchkpt_l``.  Returns the discarded records.
        """
        seqs = self.pending_seqs
        dropped_seqs = [s for s in seqs if s >= seq]
        dropped = [self._entry(s) for s in dropped_seqs]
        self._drop_entries(dropped_seqs)
        self._storage.put(self._index_key, [s for s in seqs if s < seq])
        return dropped

    def discard_all(self) -> List[CheckpointRecord]:
        """Discard every pending checkpoint."""
        seqs = self.pending_seqs
        dropped = [self._entry(s) for s in seqs]
        self._drop_entries(seqs)
        self._storage.put(self._index_key, [])
        return dropped
