"""Membership as a first-class plane (dynamic join/leave, Nakamura-style).

Leu-Bhargava assumes a fixed process set; this module removes that
assumption without touching the static-membership fast paths.  A
:class:`MembershipPlane` is owned by every kernel
(:class:`repro.kernel.KernelCore`) and publishes an epoch-numbered,
immutable :class:`MembershipView` — the single source of truth about which
processes exist.  Layers that cached a frozen pid set (the network, the
failure detector, the shard hash ring, the engines' ``peers`` tuples)
subscribe to the plane and are told about every transition.

Lifecycle of a pid:

* ``seed(pid)`` — pre-start registration via ``KernelCore.add_node``.
  Silent: no epoch bump, no notification, so a static-membership run
  produces bit-identical traces to the pre-membership code.
* ``begin_join(pid)`` / ``complete_join(pid)`` — a process entering a live
  instance.  The pid is visible in ``view.joining`` between the two calls,
  and in ``view.pids`` afterwards.
* ``begin_leave(pid)`` / ``complete_leave(pid)`` — a graceful departure.
  The pid is in ``view.leaving`` while its checkpoint obligations are being
  handed off, then moves to the plane's ``departed`` set (never reused).

Every transition except ``seed`` bumps the epoch and notifies subscribers,
so "the view changed" is always observable and totally ordered per kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, FrozenSet, Iterable, List, Set, Tuple

from repro.errors import SimulationError
from repro.types import ProcessId


@dataclass(frozen=True)
class MembershipView:
    """One immutable snapshot of the membership plane.

    ``pids`` are the current members; ``joining``/``leaving`` are the pids
    mid-transition (announced but not yet completed); ``departed`` are pids
    that left for good — their ids are retired, and traffic addressed to
    them is salvaged rather than treated as a routing error.
    """

    epoch: int = 0
    pids: Tuple[ProcessId, ...] = ()
    joining: Tuple[ProcessId, ...] = ()
    leaving: Tuple[ProcessId, ...] = ()
    departed: FrozenSet[ProcessId] = field(default_factory=frozenset)

    def __contains__(self, pid: ProcessId) -> bool:
        return pid in self.pids

    def is_departed(self, pid: ProcessId) -> bool:
        return pid in self.departed


#: A subscriber receives every published view, in epoch order.
ViewSubscriber = Callable[[MembershipView], None]


class MembershipPlane:
    """The mutable registry behind the immutable views."""

    def __init__(self, pids: Iterable[ProcessId] = ()) -> None:
        self._epoch = 0
        self._pids: Set[ProcessId] = set(pids)
        self._joining: Set[ProcessId] = set()
        self._leaving: Set[ProcessId] = set()
        self._departed: Set[ProcessId] = set()
        self._subscribers: List[ViewSubscriber] = []

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def view(self) -> MembershipView:
        return MembershipView(
            epoch=self._epoch,
            pids=tuple(sorted(self._pids)),
            joining=tuple(sorted(self._joining)),
            leaving=tuple(sorted(self._leaving)),
            departed=frozenset(self._departed),
        )

    def is_member(self, pid: ProcessId) -> bool:
        return pid in self._pids

    def is_departed(self, pid: ProcessId) -> bool:
        return pid in self._departed

    # ------------------------------------------------------------------
    # Subscription
    # ------------------------------------------------------------------
    def subscribe(self, callback: ViewSubscriber) -> None:
        """Register for every future view change (no replay of the past)."""
        self._subscribers.append(callback)

    def _publish(self) -> MembershipView:
        self._epoch += 1
        view = self.view
        for callback in list(self._subscribers):
            callback(view)
        return view

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def seed(self, pid: ProcessId) -> None:
        """Silent pre-start registration (no epoch bump, no notification).

        Idempotent for a pid mid-join: the join flow owns its visibility.
        """
        if pid in self._departed:
            raise SimulationError(f"pid {pid} departed and cannot be reused")
        if pid in self._joining:
            return
        self._pids.add(pid)

    def begin_join(self, pid: ProcessId) -> MembershipView:
        if pid in self._pids or pid in self._joining:
            raise SimulationError(f"pid {pid} is already a member or joining")
        if pid in self._departed:
            raise SimulationError(f"pid {pid} departed and cannot be reused")
        self._joining.add(pid)
        return self._publish()

    def complete_join(self, pid: ProcessId) -> MembershipView:
        if pid not in self._joining:
            raise SimulationError(f"pid {pid} has no join in progress")
        self._joining.discard(pid)
        self._pids.add(pid)
        return self._publish()

    def begin_leave(self, pid: ProcessId) -> MembershipView:
        if pid not in self._pids:
            raise SimulationError(f"pid {pid} is not a member")
        if pid in self._leaving:
            raise SimulationError(f"pid {pid} is already leaving")
        self._leaving.add(pid)
        return self._publish()

    def complete_leave(self, pid: ProcessId) -> MembershipView:
        if pid not in self._leaving:
            raise SimulationError(f"pid {pid} has no leave in progress")
        self._leaving.discard(pid)
        self._pids.discard(pid)
        self._departed.add(pid)
        return self._publish()


__all__ = ["MembershipPlane", "MembershipView", "ViewSubscriber"]
