"""Pessimistic network-partition handling (paper Section 6, last part).

"It is impossible to distinguish a failed process from an operational
process in a different partition" — so the paper treats partitioning
pessimistically with weighted voting:

* processes in a *minor* partition (≤ half the votes) are regarded as
  failed: they go dormant, initiating nothing and answering nothing;
* processes in the *major* partition treat everyone outside it as failed
  and apply the Section 6 rules 1-6 to unblock their instances;
* when a minor partition merges back, its processes follow rule 3 exactly
  as if they were restarting after a crash;
* a major partition that splits further re-determines the major on a
  relative basis (:class:`repro.failure.votes.VoteRegistry`).

:class:`PartitionCoordinator` drives all of this against a simulation: call
:meth:`split` / :meth:`heal` (directly or via scheduled events).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Set

from repro.failure.votes import VoteRegistry
from repro.types import ProcessId

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.process import CheckpointProcess
    from repro.sim.simulation import Simulation


class PartitionCoordinator:
    """Applies the pessimistic voting policy to partition events."""

    def __init__(self, sim: "Simulation", votes: VoteRegistry) -> None:
        self.sim = sim
        self.votes = votes
        self._dormant: Set[ProcessId] = set()

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def split(self, groups: List[Set[ProcessId]]) -> None:
        """Partition the network and apply the majority policy."""
        self.sim.network.partition(groups)
        labels = self.votes.classify(groups)
        major: Set[ProcessId] = set()
        for group, label in labels.items():
            if label == "major":
                major = set(group)
        for group, label in labels.items():
            if label == "major":
                continue
            for pid in group:
                self._make_dormant(pid)
        # Major-side processes regard everyone outside as failed and apply
        # rules 1-6 immediately (the status monitors flag the partition at
        # once; the failure detector was additionally informed by
        # _make_dormant so later fan-outs skip the regarded-failed peers).
        for pid in sorted(major):
            node = self.sim.nodes[pid]
            if node.crashed or pid in self._dormant:
                continue
            for other in self.sim.process_ids:
                if other != pid and other not in major:
                    node.on_failure_notice(other)

    def heal(self) -> None:
        """Merge all partitions; dormant processes recover via rule 3."""
        self.sim.network.merge()
        self.votes.on_merge(self.sim.process_ids)
        woken = sorted(self._dormant)
        self._dormant.clear()
        for pid in woken:
            # Dormancy is modelled through the crashed flag, so every
            # process we put to sleep is woken here (rule 3).
            self._wake(self.sim.nodes[pid])

    def schedule_split(self, time: float, groups: List[Set[ProcessId]]) -> None:
        self.sim.scheduler.at(time, lambda: self.split(groups), label="partition split")

    def schedule_heal(self, time: float) -> None:
        self.sim.scheduler.at(time, self.heal, label="partition heal")

    # ------------------------------------------------------------------
    # Per-process effects
    # ------------------------------------------------------------------
    def _make_dormant(self, pid: ProcessId) -> None:
        """A minority process is "regarded to be failed": it stops working.

        We model dormancy as a crash without losing the node object: volatile
        protocol state is dropped exactly as on a real crash, which is sound
        because rule 3 will rebuild it from stable storage on merge.
        """
        node = self.sim.nodes[pid]
        if node.crashed or pid in self._dormant:
            return
        self._dormant.add(pid)
        node.cancel_all_timers()
        node.on_crash()
        node.crashed = True
        if self.sim.failure_detector is not None:
            self.sim.failure_detector.report_crash(pid)

    def _wake(self, node: "CheckpointProcess") -> None:
        """On merge, a minority process follows rule 3 (restart protocol)."""
        node.crashed = False
        node.on_recover(None)
        if self.sim.failure_detector is not None:
            self.sim.failure_detector.report_recovery(node.node_id)

    @property
    def dormant(self) -> Set[ProcessId]:
        return set(self._dormant)
