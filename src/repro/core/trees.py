"""Per-instance tree state (paper Sections 3.1-3.3).

Every global checkpointing or rollback instance a process participates in is
tracked by one state object keyed by the tree timestamp ``t``.  A process may
hold many simultaneously (that is the paper's concurrency), and may have a
*different parent in each tree*: "a node may have more than one parent with
respect to different trees ... the parent of p can be uniquely identified
with respect to different trees."

The objects here are pure bookkeeping — no message sending.  The protocol
mixins in :mod:`repro.core.checkpoint_protocol` and
:mod:`repro.core.rollback_protocol` drive them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.errors import ProtocolError
from repro.types import ProcessId, TreeId


@dataclass
class ChkptTreeState:
    """One *round* of a process's participation in checkpoint tree ``T(t)``.

    Lifecycle: created on initiation (root) or on accepting a ``chkpt_req``
    (child) → requests propagated (``pending_acks`` shrinks as acks arrive)
    → true children respond ``ready_to_commit`` → this node responds to its
    parent (or decides, if root) → decision propagated → ``closed``.

    A process can participate in the same tree more than once: after its
    shared uncommitted checkpoint commits (through any overlapping
    instance), a later request for the same tree that references *newer*
    traffic recruits it again with a fresh checkpoint.  Each recruitment is
    a separate round with its own parent and its own child collection —
    pooling them would let different rounds gate on each other and deadlock
    (rounds are acyclic by creation order; a pooled state is not).  Older,
    still-collecting rounds hang off ``older``; the registry always maps the
    tree id to the newest round.
    """

    tree: TreeId
    parent: Optional[ProcessId]  # None iff this round is the root's
    pending_acks: Set[ProcessId] = field(default_factory=set)
    true_children: Set[ProcessId] = field(default_factory=set)
    ready_children: Set[ProcessId] = field(default_factory=set)
    responded: bool = False  # ready sent to parent / root decision taken
    decision: Optional[str] = None  # "commit" | "abort" once known locally
    closed: bool = False
    older: Optional["ChkptTreeState"] = None  # previous round, if still open

    @property
    def is_root(self) -> bool:
        return self.parent is None

    def chain(self) -> List["ChkptTreeState"]:
        """All rounds, oldest first (used for FIFO ack/ready crediting)."""
        rounds: List["ChkptTreeState"] = []
        node: Optional["ChkptTreeState"] = self
        while node is not None:
            rounds.append(node)
            node = node.older
        rounds.reverse()
        return rounds

    def record_ack(self, child: ProcessId, positive: bool) -> None:
        """Process a (pos|neg)_ack from a potential child.

        Duplicate and late acks are tolerated silently: on a non-FIFO
        channel a child's ``ready_to_commit`` can overtake its ``pos_ack``,
        and the re-issued rollback notices (see ``_renotify_undone_send``)
        legitimately produce second acknowledgements for the same tree.
        """
        if child not in self.pending_acks:
            return
        self.pending_acks.discard(child)
        if positive:
            self.true_children.add(child)

    def record_ready(self, child: ProcessId) -> None:
        """Process a ready_to_commit from a true child."""
        # The ack and the ready can race on a non-FIFO network: accept the
        # ready even if the pos_ack has not arrived yet, and count the child
        # as true.
        # A ready may overtake the pos_ack, or come from a child recruited
        # by a re-issued request after its first (negative) answer; a node
        # that sends us ready_to_commit considers itself our child, so
        # believe it.
        self.pending_acks.discard(child)
        self.true_children.add(child)
        self.ready_children.add(child)

    @property
    def subtree_ready(self) -> bool:
        """b3's invocation condition: all acks in and all true children ready."""
        return not self.pending_acks and self.ready_children >= self.true_children

    def drop_child(self, child: ProcessId) -> None:
        """Remove a (potential or true) child — recovery rules 1/2 support."""
        self.pending_acks.discard(child)
        self.true_children.discard(child)
        self.ready_children.discard(child)


@dataclass
class RollTreeState:
    """A process's view of one rollback tree ``T(t)``.

    Lifecycle mirrors the checkpoint tree: created on initiation or on
    accepting a ``roll_req`` → requests propagated → true children send
    ``roll_complete`` → this node completes to its parent (or, if root,
    issues ``restart``) → ``closed``.
    """

    tree: TreeId
    parent: Optional[ProcessId]
    pending_acks: Set[ProcessId] = field(default_factory=set)
    true_children: Set[ProcessId] = field(default_factory=set)
    complete_children: Set[ProcessId] = field(default_factory=set)
    responded: bool = False  # roll_complete sent to parent / root restarted
    restarted: bool = False
    closed: bool = False
    # Rule 5: children of a failed rollback initiator act as substitutes.
    substitute: bool = False

    @property
    def is_root(self) -> bool:
        return self.parent is None

    def record_ack(self, child: ProcessId, positive: bool) -> None:
        """Duplicate/late acks tolerated — see ChkptTreeState.record_ack."""
        if child not in self.pending_acks:
            return
        self.pending_acks.discard(child)
        if positive:
            self.true_children.add(child)

    def record_complete(self, child: ProcessId) -> None:
        # Mirrors ChkptTreeState.record_ready: a node completing to us
        # considers itself our child (possibly recruited by a re-issued
        # rollback notice after a first negative answer) — believe it.
        self.pending_acks.discard(child)
        self.true_children.add(child)
        self.complete_children.add(child)

    @property
    def subtree_complete(self) -> bool:
        """b7's invocation condition for this node's subtree."""
        return not self.pending_acks and self.complete_children >= self.true_children

    def drop_child(self, child: ProcessId) -> None:
        self.pending_acks.discard(child)
        self.true_children.discard(child)
        self.complete_children.discard(child)


class TreeRegistry:
    """All instance states of one process, keyed by tree timestamp."""

    def __init__(self) -> None:
        self.chkpt: Dict[TreeId, ChkptTreeState] = {}
        self.roll: Dict[TreeId, RollTreeState] = {}

    def chkpt_member(self, tree: TreeId) -> bool:
        """"P_i has been included in the same tree T(t)" for checkpoints."""
        return tree in self.chkpt

    def roll_member(self, tree: TreeId) -> bool:
        return tree in self.roll

    def open_chkpt(self, tree: TreeId, parent: Optional[ProcessId]) -> ChkptTreeState:
        if tree in self.chkpt:
            raise ProtocolError(f"already a member of checkpoint tree {tree}")
        state = ChkptTreeState(tree=tree, parent=parent)
        self.chkpt[tree] = state
        return state

    def open_chkpt_round(self, tree: TreeId, parent: Optional[ProcessId]) -> ChkptTreeState:
        """Open a new participation round for ``tree``.

        A previous round that is still collecting stays reachable through
        ``older`` so its obligations (acks to credit, a ready still owed to
        its parent, a decision to forward to its children) are not lost;
        a previous round that already closed is simply dropped.
        """
        previous = self.chkpt.pop(tree, None)
        state = ChkptTreeState(tree=tree, parent=parent)
        if previous is not None and not previous.closed:
            state.older = previous
        self.chkpt[tree] = state
        return state

    def chkpt_rounds(self, tree: TreeId) -> List[ChkptTreeState]:
        """All open-or-closed rounds for ``tree``, oldest first."""
        newest = self.chkpt.get(tree)
        return newest.chain() if newest is not None else []

    def all_chkpt_rounds(self) -> List[ChkptTreeState]:
        """Every round of every checkpoint tree (for the failure handlers)."""
        rounds: List[ChkptTreeState] = []
        for newest in self.chkpt.values():
            rounds.extend(newest.chain())
        return rounds

    def open_roll(self, tree: TreeId, parent: Optional[ProcessId]) -> RollTreeState:
        if tree in self.roll:
            raise ProtocolError(f"already a member of rollback tree {tree}")
        state = RollTreeState(tree=tree, parent=parent)
        self.roll[tree] = state
        return state

    def clear_volatile(self) -> None:
        """Crash support: tree membership is volatile and dies with the node."""
        self.chkpt.clear()
        self.roll.clear()
