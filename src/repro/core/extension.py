"""Section 3.5.3 — sending while a checkpoint is uncommitted.

The base algorithm suspends normal sends from the moment ``newchkpt`` is
taken until it commits or aborts.  The extension removes that blocking:

* a process keeps a *stack* of uncommitted checkpoints
  (``newchkpt_a .. newchkpt_l``), each shared by one or more instances;
* outgoing normal messages sent while checkpoints are pending carry
  Chandy-Lamport-style **markers** — the timestamps of the instances that
  made the newest pending checkpoint;
* a receiver seeing an unseen marker ``t'`` runs ``chkpt_initiation()``
  *before consuming the message*, so the post-checkpoint message lands after
  the receiver's own new checkpoint (preserving C1); repeated markers with
  the same ``t'`` are ignored;
* a checkpoint request is served by whichever pending checkpoint covers the
  referenced message (cases 1-3 of the paper), creating a new one only when
  the message was sent in the current interval;
* a rollback request rolls back to the latest checkpoint predating the
  earliest doomed receive and discards every pending checkpoint taken after
  it (cases 1-3 for rollback).

The paper's case analysis assumes the referenced label sits exactly at a
pending checkpoint's boundary; we implement the general covering rule (the
earliest pending checkpoint with ``seq > label`` serves the request) of
which the paper's cases are instances — see DESIGN.md §5.

Split like the base algorithm: :class:`ExtendedProtocolEngine` is the pure
sans-IO variant (safe to import from :mod:`repro.core.engine` consumers),
:class:`ExtendedCheckpointProcess` the kernel adapter that mirrors the pure
checkpoint stack onto a real :class:`~repro.stable.checkpoint.MultiCheckpointStore`.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro import tracekinds as T
from repro.core import messages as M
from repro.core.app import Application
from repro.core.engine import CheckpointStack, ProtocolConfig, ProtocolEngine
from repro.core.process import CheckpointProcess
from repro.core.trees import ChkptTreeState
from repro.stable.checkpoint import MultiCheckpointStore
from repro.types import CheckpointRecord, ProcessId, Seq, TreeId


class ExtendedProtocolEngine(ProtocolEngine):
    """`ProtocolEngine` variant implementing the Section 3.5.3 extension."""

    def __init__(
        self,
        pid: ProcessId,
        config: Optional[ProtocolConfig] = None,
        app: Optional[Application] = None,
    ) -> None:
        super().__init__(pid, config=config, app=app)
        self.multi_store = CheckpointStack(self)
        # Per-pending-checkpoint commit sets: seq -> {tree timestamps}.
        self.commit_sets: Dict[Seq, Set[TreeId]] = {}
        self.tree_to_seq: Dict[TreeId, Seq] = {}
        # Markers already acted upon (per paper: later ones are ignored).
        self._seen_markers: Set[TreeId] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        self.ledger.n = 1
        initial = self.multi_store.initialize(
            self.app.snapshot(), made_at=self.now, meta=self._ledger_manifest()
        )
        self.store.initialize(self.app.snapshot(), made_at=self.now)  # unused mirror
        self.committed_history = [initial]
        self._reset_checkpoint_timer()

    # ------------------------------------------------------------------
    # Markers on the normal plane
    # ------------------------------------------------------------------
    def _current_markers(self) -> Tuple[TreeId, ...]:
        newest = self.multi_store.newest
        if newest is None:
            return ()
        return tuple(sorted(self.commit_sets.get(newest.seq, set())))

    def _before_consume_normal(self, src: ProcessId, body: M.NormalBody) -> None:
        for marker in body.markers:
            if marker not in self._seen_markers:
                self._seen_markers.add(marker)
                # "Upon receiving the marker attached to a normal message,
                # P_i invokes the procedure chkpt_initiation()."
                self.initiate_checkpoint()

    # ------------------------------------------------------------------
    # b1 — initiation (no newchkpt-nil guard, no send suspension)
    # ------------------------------------------------------------------
    def initiate_checkpoint(self) -> Optional[TreeId]:
        if self.crashed or self.comm_suspended:
            return None
        tree_id = self._new_tree_id()
        self._trace(T.K_INSTANCE_START, tree=tree_id, instance="checkpoint")
        tree = self.trees.open_chkpt(tree_id, parent=None)
        record = self._push_new_checkpoint(tree_id)
        self._propagate_ext_requests(tree, record)
        self._chkpt_maybe_respond(tree)
        return tree_id

    def _push_new_checkpoint(self, tree_id: TreeId) -> CheckpointRecord:
        seq = self.ledger.advance()
        record = self.multi_store.push(
            seq, self.app.snapshot(), made_at=self.now, **self._ledger_manifest()
        )
        self.commit_sets[seq] = {tree_id}
        self.tree_to_seq[tree_id] = seq
        self._sync_union_set()
        self._reset_checkpoint_timer()
        self._trace(T.K_CHKPT_TENTATIVE, seq=seq, tree=tree_id)
        return record

    def _propagate_ext_requests(self, tree: ChkptTreeState, serving: CheckpointRecord) -> None:
        """Recruit over *every* interval not certified by a committed checkpoint.

        Unlike the base algorithm (where send-suspension means each pending
        checkpoint's interval is independent), a commit here promotes the
        whole pending prefix through the serving checkpoint, so the instance
        must certify every receive since ``oldchkpt`` — the potential
        children are the senders of live messages in the interval range
        ``[oldchkpt.seq, serving.seq - 1]``.
        """
        oldchkpt = self.multi_store.oldchkpt
        potentials = self.ledger.senders_in_range(oldchkpt.seq, serving.seq - 1)
        potentials.pop(self.node_id, None)
        tree.pending_acks |= set(potentials)
        for child, max_label in sorted(potentials.items()):
            self._send_control(child, M.ChkptReq(tree=tree.tree, max_label=max_label))
        self._schedule_rule1_for_dead(potentials)

    def _sync_union_set(self) -> None:
        """Keep the base-class union view (used by recovery) coherent."""
        self.chkpt_commit_set = set().union(*self.commit_sets.values()) if self.commit_sets else set()
        self._persist_commit_set()

    # ------------------------------------------------------------------
    # b2 — request propagation with the case analysis
    # ------------------------------------------------------------------
    def _on_chkpt_req(self, src: ProcessId, req: M.ChkptReq) -> None:
        if not self._is_true_chkpt_child_ext(src, req):
            notice = self._undone_notice_for(src, req.max_label)
            self._send_control(
                src, M.ChkptAck(tree=req.tree, positive=False, undone_notice=notice)
            )
            return
        self._send_control(src, M.ChkptAck(tree=req.tree, positive=True))
        tree = self.trees.open_chkpt_round(req.tree, parent=src)

        covering = self._covering_checkpoint(req.max_label)
        if covering is None:
            # Case 3: the referenced message was sent in the current
            # interval; a brand new checkpoint is needed.
            covering = self._push_new_checkpoint(req.tree)
        else:
            # Case 2: an existing pending checkpoint already covers it.
            self.commit_sets[covering.seq].add(req.tree)
            # The tree may now be served by a newer checkpoint than in an
            # earlier round; commits act through the newest serving one.
            self.tree_to_seq[req.tree] = max(
                covering.seq, self.tree_to_seq.get(req.tree, 0)
            )
            self._sync_union_set()
        self._propagate_ext_requests(tree, covering)
        self._chkpt_maybe_respond(tree)

    def _is_true_chkpt_child_ext(self, src: ProcessId, req: M.ChkptReq) -> bool:
        """Case 1 is the rejection case: message predates ``oldchkpt``.

        Active membership rejects a request only when the tree's serving
        checkpoint actually covers the referenced label.  Without the base
        algorithm's send-suspension a member can send *after* its serving
        checkpoint; a request referencing such a message must recruit a new
        round with a newer covering checkpoint.
        """
        serving = self.tree_to_seq.get(req.tree)
        if serving is not None and serving > req.max_label:
            return False
        if self.decisions_seen.get(req.tree) == "abort":
            return False  # aborted trees never recruit again (see base class)
        oldchkpt = self.multi_store.oldchkpt
        if oldchkpt is None or oldchkpt.seq > req.max_label:
            return False
        if self.ledger.has_undone_send_with_label(src, req.max_label):
            return False
        return True

    def _covering_checkpoint(self, label: Seq) -> Optional[CheckpointRecord]:
        """Earliest pending checkpoint taken after the labelled send."""
        for record in self.multi_store.pending:
            if record.seq > label:
                return record
        return None

    # ------------------------------------------------------------------
    # b3/b4 — decisions routed to the right pending checkpoint
    # ------------------------------------------------------------------
    def _chkpt_maybe_respond(self, tree: ChkptTreeState) -> None:
        if tree.closed or tree.responded or not tree.subtree_ready:
            return
        tree.responded = True
        if not tree.is_root:
            self._send_control(tree.parent, M.ReadyToCommit(tree=tree.tree))
            return
        seq = self.tree_to_seq.get(tree.tree)
        if seq is not None and tree.tree in self.commit_sets.get(seq, set()):
            self._commit_checkpoint(tree.tree)
        else:
            self._forward_decision(tree, "commit")

    def _on_commit(self, src: ProcessId, msg: M.Commit) -> None:
        self._remember_decision(msg.tree, "commit")
        seq = self.tree_to_seq.get(msg.tree)
        if seq is not None and msg.tree in self.commit_sets.get(seq, set()):
            self._commit_checkpoint(msg.tree)
            return
        tree = self.trees.chkpt.get(msg.tree)
        if tree is not None:
            self._forward_decision(tree, "commit")

    def _commit_checkpoint(self, tree_id: TreeId) -> None:
        tree = self.trees.chkpt.get(tree_id)
        was_open_root = tree is not None and tree.is_root and not tree.closed
        if tree is not None:
            self._forward_decision(tree, "commit")
        seq = self.tree_to_seq[tree_id]
        committed = self.multi_store.commit_through(seq)
        self.committed_history.append(committed)
        self._trace(T.K_CHKPT_COMMIT, seq=committed.seq, tree=tree_id)
        # Instances attached to this or older pending checkpoints are now
        # satisfied; drop their bookkeeping — unless a later recruitment
        # round attached the instance to a still-pending newer checkpoint,
        # in which case it stays live there.
        for old_seq in [s for s in self.commit_sets if s <= seq]:
            for satisfied in self.commit_sets.pop(old_seq):
                surviving = [
                    s for s, m in self.commit_sets.items() if satisfied in m
                ]
                if surviving:
                    self.tree_to_seq[satisfied] = max(surviving)
                    continue
                self.tree_to_seq.pop(satisfied, None)
                state = self.trees.chkpt.get(satisfied)
                if state is not None and state.is_root and satisfied != tree_id:
                    self._trace(T.K_INSTANCE_COMMIT, tree=satisfied)
        self._sync_union_set()
        self._remember_decision(tree_id, "commit")
        if was_open_root:
            self._trace(T.K_INSTANCE_COMMIT, tree=tree_id)

    def _on_abort(self, src: ProcessId, msg: M.Abort) -> None:
        self._remember_decision(msg.tree, "abort")
        self._abort_instance(msg.tree)

    def _abort_instance(self, tree_id: TreeId) -> None:
        tree = self.trees.chkpt.get(tree_id)
        self.tree_to_seq.pop(tree_id, None)
        # The tree may be attached to several pending checkpoints (one per
        # recruitment round); drop it everywhere, and discard any pending
        # checkpoint left with no instance at all.
        orphaned = []
        for seq, members in list(self.commit_sets.items()):
            if tree_id in members:
                members.discard(tree_id)
                if not members:
                    orphaned.append(seq)
        for seq in orphaned:
            del self.commit_sets[seq]
            if self.multi_store.find(seq) is not None:
                # Remove just this pending checkpoint: newer pending
                # checkpoints capture their own (still live) states.
                remaining = [r for r in self.multi_store.discard_from(seq) if r.seq > seq]
                for record in remaining:
                    self.multi_store.push(record.seq, record.state, record.made_at, **record.meta)
                self._trace(T.K_CHKPT_ABORT, seq=seq, tree=tree_id)
        self._sync_union_set()
        if tree is not None:
            was_open_root = tree.is_root and not tree.closed
            self._forward_decision(tree, "abort")
            if was_open_root:
                self._trace(T.K_INSTANCE_ABORT, tree=tree_id)

    # ------------------------------------------------------------------
    # Rollback (extension cases 1-3)
    # ------------------------------------------------------------------
    def initiate_rollback(self) -> Optional[TreeId]:
        """The initiator always rolls back to its *last* checkpoint."""
        if self.crashed:
            return None
        tree_id = self._new_tree_id()
        self._trace(T.K_INSTANCE_START, tree=tree_id, instance="rollback")
        tree = self.trees.open_roll(tree_id, parent=None)
        target = self.multi_store.newest or self.multi_store.oldchkpt
        self._discard_pending_after(target.seq, keep_target=True)
        self._perform_rollback(tree, target, discard_newchkpt=False)
        self._roll_maybe_complete(tree)
        return tree_id

    def _on_roll_req(self, src: ProcessId, req: M.RollReq) -> None:
        """Extension cases 1-3, with the same membership rule as the base
        algorithm (see ``RollProtocolMixin._on_roll_req``)."""
        self.ledger.install_discard_filter(src, req.undo_seq, req.undone_upto)
        member = self.trees.roll_member(req.tree)
        doomed = self.ledger.has_live_receive_from(src, req.undo_seq)
        is_child = doomed and not member
        self._send_control(src, M.RollAck(tree=req.tree, positive=is_child))
        if not doomed:
            return

        if is_child:
            tree = self.trees.open_roll(req.tree, parent=src)
        else:
            tree = self.trees.roll[req.tree]
            if tree.closed:
                tree = self.trees.open_roll(self._new_tree_id(), parent=None)
                self._trace(T.K_INSTANCE_START, tree=tree.tree, instance="rollback")

        # Earliest interval containing a doomed receive from the requester.
        doomed_intervals = [
            r.interval
            for r in self.ledger.received
            if not r.undone and r.src == src and r.label >= req.undo_seq
        ]
        earliest = min(doomed_intervals)
        target = self._latest_checkpoint_at_or_before(earliest)
        self._discard_pending_after(target.seq, keep_target=True)
        self._perform_rollback(tree, target, discard_newchkpt=False)
        self._roll_maybe_complete(tree)

    def _latest_checkpoint_at_or_before(self, interval: Seq) -> CheckpointRecord:
        """The newest checkpoint that still predates receives in ``interval``.

        Restoring a checkpoint with sequence number ``s`` undoes every
        receive with interval ``>= s``; the newest checkpoint with
        ``seq <= interval`` therefore undoes the doomed receive while
        preserving as much later state as possible (paper cases 2.1/2.2/3).
        """
        candidates = [r for r in self.multi_store.pending if r.seq <= interval]
        if candidates:
            return candidates[-1]
        return self.multi_store.oldchkpt

    def _discard_pending_after(self, seq: Seq, keep_target: bool) -> None:
        """Abort every pending checkpoint newer than ``seq`` (doomed states)."""
        threshold = seq + 1 if keep_target else seq
        dropped = self.multi_store.discard_from(threshold)
        for record in dropped:
            members = self.commit_sets.pop(record.seq, set())
            for tree_id in sorted(members):
                # An instance loses this serving checkpoint; fall back to an
                # older surviving one if a previous round attached it there,
                # otherwise the instance is aborted here.
                surviving = [
                    s for s, m in self.commit_sets.items() if tree_id in m
                ]
                if surviving:
                    self.tree_to_seq[tree_id] = max(surviving)
                    continue
                self.tree_to_seq.pop(tree_id, None)
                state = self.trees.chkpt.get(tree_id)
                if state is not None:
                    was_open_root = state.is_root and not state.closed
                    self._forward_decision(state, "abort")
                    if was_open_root:
                        self._trace(T.K_INSTANCE_ABORT, tree=tree_id)
                self._remember_decision(tree_id, "abort")
            self._trace(T.K_CHKPT_ABORT, seq=record.seq, tree=None)
        if dropped:
            self._sync_union_set()

    # ------------------------------------------------------------------
    # The extension never suspends sends for checkpoints.
    # ------------------------------------------------------------------
    def _suspend_send(self) -> None:  # pragma: no cover - defensive
        """No-op: the whole point of the extension."""

    def _make_new_checkpoint(self, tree_id: TreeId) -> None:  # pragma: no cover
        raise NotImplementedError("extension uses _push_new_checkpoint")


class ExtendedCheckpointProcess(CheckpointProcess):
    """Adapter for :class:`ExtendedProtocolEngine` with a real pending stack."""

    engine_class = ExtendedProtocolEngine

    def _hydrate_engine(self, engine: ExtendedProtocolEngine) -> None:
        # The real stack must exist before the engine starts emitting stack
        # effects; created here because this runs inside the base __init__
        # (the ``engine`` slot is still None, so the assignment stays local).
        self.multi_store = MultiCheckpointStore(self.storage, namespace="mckpt")
        super()._hydrate_engine(engine)
        engine.multi_store.oldchkpt = self.multi_store.oldchkpt
        engine.multi_store._pending = list(self.multi_store.pending)
