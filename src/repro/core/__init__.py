"""The Leu-Bhargava concurrent robust checkpoint/rollback algorithm.

Public surface:

* :class:`~repro.core.engine.ProtocolEngine` — the sans-IO protocol state
  machine (procedures b1-b8 plus the Section 6 handlers) driven purely by
  typed events and emitting typed effects.
* :class:`~repro.core.process.CheckpointProcess` — a kernel-bound process
  adapter that drives a :class:`ProtocolEngine` under the simulation or the
  live asyncio runtime.
* :class:`~repro.core.process.ProtocolConfig` — its tunables.
* :class:`~repro.core.extension.ExtendedCheckpointProcess` — the Section
  3.5.3 variant that keeps sending while a checkpoint is uncommitted.
* :class:`~repro.core.partition.PartitionCoordinator` — pessimistic
  partition handling with weighted voting.
* :mod:`~repro.core.messages` — the control-message vocabulary.

Attribute access is lazy (PEP 562) so that importing the pure modules —
``repro.core.engine``, ``repro.core.events``, ``repro.core.effects`` — never
drags in :mod:`repro.sim` through this package's adapter re-exports.
"""

from typing import Any, List

_EXPORTS = {
    "Application": ("repro.core.app", "Application"),
    "CheckpointProcess": ("repro.core.process", "CheckpointProcess"),
    "ChkptTreeState": ("repro.core.trees", "ChkptTreeState"),
    "CounterApp": ("repro.core.app", "CounterApp"),
    "ExtendedCheckpointProcess": ("repro.core.extension", "ExtendedCheckpointProcess"),
    "ExtendedProtocolEngine": ("repro.core.extension", "ExtendedProtocolEngine"),
    "LabelLedger": ("repro.core.labels", "LabelLedger"),
    "PartitionCoordinator": ("repro.core.partition", "PartitionCoordinator"),
    "ProtocolConfig": ("repro.core.process", "ProtocolConfig"),
    "ProtocolEngine": ("repro.core.engine", "ProtocolEngine"),
    "RollTreeState": ("repro.core.trees", "RollTreeState"),
    "TreeRegistry": ("repro.core.trees", "TreeRegistry"),
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value  # cache: subsequent lookups skip __getattr__
    return value


def __dir__() -> List[str]:
    return sorted(set(globals()) | set(_EXPORTS))
