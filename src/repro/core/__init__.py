"""The Leu-Bhargava concurrent robust checkpoint/rollback algorithm.

Public surface:

* :class:`~repro.core.process.CheckpointProcess` — a simulated process
  running the full algorithm (procedures b1-b8 plus the Section 6 handlers).
* :class:`~repro.core.process.ProtocolConfig` — its tunables.
* :class:`~repro.core.extension.ExtendedCheckpointProcess` — the Section
  3.5.3 variant that keeps sending while a checkpoint is uncommitted.
* :class:`~repro.core.partition.PartitionCoordinator` — pessimistic
  partition handling with weighted voting.
* :mod:`~repro.core.messages` — the control-message vocabulary.
"""

from repro.core.app import Application, CounterApp
from repro.core.extension import ExtendedCheckpointProcess
from repro.core.labels import LabelLedger
from repro.core.partition import PartitionCoordinator
from repro.core.process import CheckpointProcess, ProtocolConfig
from repro.core.trees import ChkptTreeState, RollTreeState, TreeRegistry

__all__ = [
    "Application",
    "CheckpointProcess",
    "ChkptTreeState",
    "CounterApp",
    "ExtendedCheckpointProcess",
    "LabelLedger",
    "PartitionCoordinator",
    "ProtocolConfig",
    "RollTreeState",
    "TreeRegistry",
]
