"""Section 6 — resiliency against process failures, as exception handlers.

The paper's six rules resolve the blocking that a fail-stop crash can cause
in either protocol.  Triggers:

* a failure-detector notice about a peer (rules 1, 2, 4, 5, 6) — delivered
  through a :class:`repro.core.events.FailureNotice` event;
* this process restarting after a crash (rule 3) — a
  :class:`repro.core.events.Recover` event, which carries the spooled
  envelopes and spooler-observed decisions so the pure engine never talks to
  a spooler group itself.

Rule summary → implementation:

1. Crashed process does not answer a checkpoint request → the requester
   drops it, propagates ``abort`` to its other true children, processes the
   abort locally, and initiates a global rollback instance.
2. Crashed process does not answer a rollback request → the requester
   excludes it as a child and continues.
3. A restarting process first resolves its uncommitted checkpoint (spooler
   decisions, else a broadcast inquiry; a restarting *initiator* always
   aborts), then initiates a global rollback instance and finally drains its
   spooled normal messages.
4. Checkpoint initiator crashed before deciding → each true child aborts the
   instance "under the control of its true checkpoint children", i.e.
   processes an abort locally and propagates it down.
5. Rollback initiator crashed before ``restart`` → each true child becomes a
   substitute root: it finishes collecting ``roll_complete`` and issues
   ``restart`` to its own subtree.
6. An intermediate parent crashed without forwarding a decision → the
   orphaned child broadcasts a :class:`~repro.core.messages.DecisionInquiry`
   to all operational processes, retrying periodically; the first concrete
   answer is applied as if it came from the parent.  If every process that
   saw the decision is down, the child waits (and keeps retrying).

All handlers are no-ops unless ``config.failure_resilience`` is set, so the
base algorithm can be studied without them.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro import tracekinds as T
from repro.core import effects as FX
from repro.core import events as EV
from repro.core import messages as M
from repro.types import ProcessId, TreeId


class RecoveryMixin:
    """Section 6 exception handlers.  Mixed into ``ProtocolEngine``."""

    # ------------------------------------------------------------------
    # Crash / restart (rule 3)
    # ------------------------------------------------------------------
    def on_crash(self) -> None:
        """Clean fail-stop: volatile protocol state vanishes.

        Stable storage (``oldchkpt``/``newchkpt``, the persisted commit set)
        and the message logs survive; tree memberships, suspension flags,
        queued output and observed decisions do not.
        """
        self.trees.clear_volatile()
        self.roll_restart_set = set()
        self.chkpt_commit_set = set()
        self.output_queue.clear()
        self.send_suspended = False
        self.comm_suspended = False
        self.decisions_seen = {}
        self._open_inquiries = {}
        self._pending_spool = []

    def on_recover(self, event: EV.Recover) -> None:
        """Rule 3: resolve the uncommitted checkpoint, then roll back."""
        self._recovering = True
        self._spool_decisions = event.spool_decisions
        self.app.restore((self.store.newchkpt or self.store.oldchkpt).state)
        self.chkpt_commit_set = self._load_commit_set()
        self.decisions_seen = self._load_decisions()
        self._collect_spool(event.spooled)

        if not self.store.has_new:
            self._finish_recovery()
            return

        # "If the restarting process was the checkpointing initiator, it
        # always aborts its uncommitted checkpoint" — but only *its own*
        # instances: the checkpoint may be shared with instances rooted
        # elsewhere, and one of those may already have committed (committing
        # the very same checkpoint at every other member).  An own instance
        # cannot have committed — committing is the root's own action.
        own = {t for t in self.chkpt_commit_set if t.initiator == self.node_id}
        for tree_id in sorted(own):
            self._remember_decision(tree_id, "abort")
        others = self.chkpt_commit_set - own
        if not others:
            self._recovery_abort_newchkpt()
            self._finish_recovery()
            return

        decision = self._decision_from_spoolers(others)
        if decision == "commit":
            self.committed_history.append(self.store.commit_new())
            self._trace(T.K_CHKPT_COMMIT, seq=self.store.oldchkpt.seq, tree=None)
            self.chkpt_commit_set = set()
            self._persist_commit_set()
            self._finish_recovery()
        elif decision == "abort":
            self._recovery_abort_newchkpt()
            self._finish_recovery()
        else:
            # No decision on any live spooler: inquire all other processes
            # and retry until an answer arrives (rule 3 / rule 6 wait).
            self.chkpt_commit_set = set(others)
            self._persist_commit_set()
            for tree_id in sorted(others):
                self._start_decision_inquiry(tree_id, "checkpoint")

    def _recovery_abort_newchkpt(self) -> None:
        doomed = self.store.newchkpt
        if doomed is not None:
            self.store.discard_new()
            self._trace(T.K_CHKPT_ABORT, seq=doomed.seq, tree=None)
        self.chkpt_commit_set = set()
        self._persist_commit_set()

    def _finish_recovery(self) -> None:
        """Tail of rule 3: start the mandated global rollback instance, then
        (once communication resumes) consume the spooled messages."""
        self._recovering = False
        self._cancel_all_inquiries()
        self.initiate_rollback()
        # Crash notices broadcast while we were down never reached us: the
        # status monitor's view (assumption c) rides on the Recover event;
        # apply the failure rules for each peer still down — in particular
        # rule 2, so the rollback we just initiated does not wait on a dead
        # process's acknowledgement.
        if self._status_down is not None:
            for pid in self._status_down:
                if pid != self.node_id:
                    self.on_failure_notice(pid)
        if not self.comm_suspended:
            self._drain_pending_spool()
        self._reset_checkpoint_timer()

    def _decision_from_spoolers(self, instances: Iterable[TreeId]) -> Optional[str]:
        """Commit/abort verdict recorded by this process's live spoolers.

        A single ``commit`` for any of ``instances`` (the foreign-rooted
        instances sharing our checkpoint) commits it; an ``abort`` for every
        one of them aborts it; otherwise no verdict (returns ``None`` — also
        when the Recover event carried no decisions: no spooler group, or
        all replicas currently down).
        """
        seen = self._spool_decisions
        if seen is None:
            return None
        verdicts = {tree: kind for kind, tree in seen}
        if any(verdicts.get(t) == "commit" for t in instances):
            return "commit"
        if instances and all(verdicts.get(t) == "abort" for t in instances):
            return "abort"
        return None

    # ------------------------------------------------------------------
    # Spooled normal messages
    # ------------------------------------------------------------------
    def _collect_spool(self, spooled: Optional[Iterable] = None) -> None:
        if spooled is None:
            self._pending_spool = []
            return
        envelopes = list(spooled)
        # Most spooled control traffic is stale (the peers applied their
        # failure handlers for us; decisions were recorded separately via
        # observe_decision) — except roll_reqs: they carry the discard
        # ranges for messages their senders undid while we were down, and
        # without them we would consume stale spooled normal messages.
        # They are replayed *before* the normal messages.
        roll_reqs = [
            e for e in envelopes
            if e.is_control and isinstance(e.body, M.RollReq)
        ]
        normals = [e for e in envelopes if e.is_normal]
        self._pending_spool = roll_reqs + normals

    def _drain_pending_spool(self) -> None:
        pending = getattr(self, "_pending_spool", [])
        self._pending_spool = []
        for envelope in pending:
            self._emit(FX.Redeliver(envelope=envelope))

    # ------------------------------------------------------------------
    # Peer-failure notices (rules 1, 2, 4, 5, 6)
    # ------------------------------------------------------------------
    def on_failure_notice(self, pid: ProcessId) -> None:
        if not self.config.failure_resilience or self.crashed:
            return

        for tree in self.trees.all_chkpt_rounds():
            if tree.closed:
                continue
            if pid in tree.pending_acks or (
                pid in tree.true_children and pid not in tree.ready_children
            ):
                # Rule 1: our (potential) child died before answering.
                tree.drop_child(pid)
                self._abort_instance(tree.tree)
                self._remember_decision(tree.tree, "abort")
                self.initiate_rollback()
            elif tree.parent == pid:
                if tree.tree.initiator == pid and not tree.responded:
                    # Rule 4: the initiator died and we have not voted yet,
                    # so it cannot possibly have decided commit — the
                    # instance is aborted under the children's control.
                    self._remember_decision(tree.tree, "abort")
                    self._abort_instance(tree.tree)
                else:
                    # Rule 6 (also covering a dead initiator after our
                    # vote, when a commit may already exist — possibly only
                    # in the dead initiator's stable storage): find the
                    # decision by inquiry and wait until someone knows.
                    self._start_decision_inquiry(tree.tree, "checkpoint")

        for tree in list(self.trees.roll.values()):
            if tree.closed:
                continue
            # The dead process can be both a pending child and our parent in
            # the same tree (we fanned a request back towards our recruiter),
            # so both rules are checked independently.
            if pid in tree.pending_acks or (
                pid in tree.true_children and pid not in tree.complete_children
            ):
                # Rule 2: exclude the failed roll-child and continue.
                tree.drop_child(pid)
            if tree.parent == pid:
                if tree.tree.initiator == pid:
                    # Rule 5: act as a substitute root for our subtree.
                    tree.substitute = True
                else:
                    # Rule 6 for rollback: hunt for the restart decision.
                    self._start_decision_inquiry(tree.tree, "rollback")
            self._roll_maybe_complete(tree)

    def on_recovery_notice(self, pid: ProcessId) -> None:
        """Peers need no action on recovery: the restarting process drives
        rule 3 itself and its rollback instance will reach us if needed."""

    # ------------------------------------------------------------------
    # Decision inquiry (rules 3 and 6)
    # ------------------------------------------------------------------
    def _start_decision_inquiry(self, tree_id: TreeId, decision_kind: str) -> None:
        if not hasattr(self, "_open_inquiries"):
            self._open_inquiries = {}
        if tree_id in self._open_inquiries:
            return
        self._open_inquiries[tree_id] = decision_kind
        self._broadcast_inquiry(tree_id, decision_kind)

    def _broadcast_inquiry(self, tree_id: TreeId, decision_kind: str) -> None:
        if tree_id not in getattr(self, "_open_inquiries", {}):
            return
        self._emit(
            FX.Broadcast(body=M.DecisionInquiry(tree=tree_id, decision_kind=decision_kind))
        )
        self._set_timer(
            f"inquiry-{tree_id}",
            self.config.inquiry_retry_interval,
            lambda: self._broadcast_inquiry(tree_id, decision_kind),
        )

    def _cancel_inquiry(self, tree_id: TreeId) -> None:
        if hasattr(self, "_open_inquiries"):
            self._open_inquiries.pop(tree_id, None)
        self.cancel_timer(f"inquiry-{tree_id}")

    def _cancel_all_inquiries(self) -> None:
        for tree_id in list(getattr(self, "_open_inquiries", {})):
            self._cancel_inquiry(tree_id)

    def _on_decision_inquiry(self, src: ProcessId, inquiry: M.DecisionInquiry) -> None:
        wanted = {"checkpoint": ("commit", "abort"), "rollback": ("restart",)}
        decision = self.decisions_seen.get(inquiry.tree)
        if decision not in wanted[inquiry.decision_kind]:
            decision = None
        self._send_control(
            src,
            M.DecisionReply(
                tree=inquiry.tree, decision_kind=inquiry.decision_kind, decision=decision
            ),
        )

    def _on_decision_reply(self, src: ProcessId, reply: M.DecisionReply) -> None:
        if reply.decision is None:
            return
        if reply.tree not in getattr(self, "_open_inquiries", {}):
            return
        self._cancel_inquiry(reply.tree)
        self._remember_decision(reply.tree, reply.decision)

        if reply.decision == "commit":
            if reply.tree in self.chkpt_commit_set:
                self._commit_checkpoint(reply.tree)
            if self._recovering:
                self._finish_recovery()
        elif reply.decision == "abort":
            self._abort_instance(reply.tree)
            if self._recovering and not self.store.has_new:
                self._finish_recovery()
        elif reply.decision == "restart":
            self._on_restart(src, M.Restart(tree=reply.tree))
