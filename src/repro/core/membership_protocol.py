"""Dynamic-membership handling for the sans-IO engine (join/leave/handoff).

Leu-Bhargava fixes the process set at start; Nakamura et al.
(arXiv:2103.15285) show checkpoint-rollback extends to dynamic systems when
membership changes are explicit protocol events.  This mixin adds that
plane to :class:`repro.core.engine.ProtocolEngine`:

* :class:`repro.core.events.Join` — an existing engine learns a new peer
  exists (the joiner itself receives an ordinary ``Start``).  Joining is
  deliberately cheap: a process with no communication history can never be
  recruited into an open instance (it has sent nothing anyone received), so
  a join mid-instance neither blocks a 2PC round nor changes any tree.
* :class:`repro.core.events.Leave` — a graceful departure.  The departing
  engine resolves its own checkpoint obligations (aborting every *unvoted*
  open round — safe, since the root cannot have decided without its ack —
  while leaving *voted* participations to the root's decision, the 2PC
  blocking rule), unblocks any rollback trees it participates in, and
  hands the rest — commit-set membership, its decision log, dead-letter
  summaries — to a designated successor via a
  :class:`repro.core.effects.Handoff` effect.  Remaining engines drop the
  departed pid from their peer sets and from every open instance round, so
  no round awaits an ack from a process that no longer exists.
* :class:`repro.core.messages.HandoffMsg` — the successor adopts the
  departed pid's decision log so rule-6 :class:`DecisionInquiry` broadcasts
  about its trees keep getting answered after it is gone.
* :class:`repro.core.events.ViewChange` — a wholesale peer refresh for
  drivers that batch several transitions.

None of this runs on a static-membership execution: no effect, trace or
timer is produced unless a Join/Leave/ViewChange event is actually
delivered, keeping the golden traces bit-identical.
"""

from __future__ import annotations

from typing import Dict

from repro import tracekinds as T
from repro.core import effects as FX
from repro.core import events as EV
from repro.core import messages as M
from repro.types import ProcessId, TreeId


def _tree_order(tree_id: TreeId):
    """Deterministic ordering for TreeId sets (frozen dataclass, no __lt__)."""
    return (tree_id.initiator, tree_id.initiation_seq)


class MembershipMixin:
    """Join/leave/handoff handlers.  Mixed into ``ProtocolEngine``."""

    # ------------------------------------------------------------------
    # Join
    # ------------------------------------------------------------------
    def _ev_join(self, event: EV.Join) -> None:
        if event.pid == self.node_id:
            return  # the joiner's own world view arrives via Start
        if event.peers:
            self.peers = tuple(event.peers)
        elif event.pid not in self.peers:
            self.peers = tuple(sorted(set(self.peers) | {event.pid}))

    def _ev_view_change(self, event: EV.ViewChange) -> None:
        self.peers = tuple(event.pids)

    # ------------------------------------------------------------------
    # Leave
    # ------------------------------------------------------------------
    def _ev_leave(self, event: EV.Leave) -> None:
        if event.pid == self.node_id:
            self._depart(event)
            return
        self.peers = tuple(p for p in self.peers if p != event.pid)
        # Never recruit the departed pid into future instances: its
        # messages are settled history (obligations went to the successor).
        self.departed_peers.add(event.pid)
        # Drop the departed pid from every open round so no instance blocks
        # awaiting its answer.  Unlike a crash (rule 1) this is graceful:
        # the departing engine resolved its own obligations on the way out
        # (its abort/veto messages are in flight), so the round simply
        # continues without it — no abort, no mandated rollback.
        for state in self.trees.all_chkpt_rounds():
            if state.closed:
                continue
            if event.pid in state.pending_acks or event.pid in state.true_children:
                state.drop_child(event.pid)
                self._chkpt_maybe_respond(state)
            elif state.parent == event.pid and state.responded:
                # Our parent departed after we voted: the decision will
                # never be relayed through it, so skip straight to the
                # rule-6 inquiry instead of waiting out the timeout.
                self._start_decision_inquiry(state.tree, "checkpoint")
        for state in list(self.trees.roll.values()):
            if state.closed:
                continue
            if event.pid in state.pending_acks or event.pid in state.true_children:
                state.drop_child(event.pid)
                self._roll_maybe_complete(state)

    def _depart(self, event: EV.Leave) -> None:
        """The graceful-departure sequence for this engine itself.

        Obligations are snapshotted first (the handoff describes the state
        *before* departure resolution), then every open instance is
        resolved: checkpoint instances abort (the only decision a departing
        member can guarantee), rollback participations complete so their
        trees make progress, and the leftovers travel to the successor.
        """
        commit_set = tuple(sorted(self.chkpt_commit_set, key=_tree_order))
        uncommitted = self.store.newchkpt
        uncommitted_seq = uncommitted.seq if uncommitted is not None else None

        # Resolve checkpoint obligations.  Only *unvoted* open rounds are
        # aborted: the root cannot have decided without our ack, so the
        # veto propagates and the abort is globally consistent
        # (``_abort_instance`` discards the shared checkpoint, vetoes
        # upward and propagates downward, exactly as rule 3 does for a
        # restart).  A participation already *voted* ready is the 2PC
        # blocking case — a ready vote cannot be withdrawn, the root may
        # commit without us — so those trees are left to the root's
        # decision.  The departed checkpoint is simply absent from the
        # recovery line, which is sound because a departed pid's sends are
        # settled history: no restart will ever unsend them.  The tree ids
        # still travel to the successor (``commit_set``) for audit.
        unvoted = {
            s.tree
            for s in self.trees.all_chkpt_rounds()
            if not s.closed and not s.responded
        }
        for tree_id in sorted(unvoted, key=_tree_order):
            self._remember_decision(tree_id, "abort")
            self._abort_instance(tree_id)

        # Unblock rollback trees: a departing participant cannot restore
        # state it is about to discard, but it must not stall the tree.
        for state in list(self.trees.roll.values()):
            if state.closed:
                continue
            if state.is_root:
                for child in sorted(state.true_children):
                    self._send_control(child, M.Restart(tree=state.tree))
                self._remember_decision(state.tree, "restart")
            elif not state.responded:
                self._send_control(state.parent, M.RollComplete(tree=state.tree))
                state.responded = True
            state.closed = True

        decisions = tuple(
            (tree, decision)
            for tree, decision in sorted(self.decisions_seen.items(), key=lambda kv: _tree_order(kv[0]))
        )
        if event.successor is not None and event.successor != self.node_id:
            self._emit(
                FX.Handoff(
                    successor=event.successor,
                    source=self.node_id,
                    commit_set=commit_set,
                    decisions=decisions,
                    uncommitted_seq=uncommitted_seq,
                    spooled=tuple(event.spooled),
                )
            )

        self._cancel_all_inquiries()
        self.cancel_timer("ckpt-timer")
        self._timer_actions.clear()
        self.output_queue.clear()
        self.departed = True
        self.crashed = True  # reuse the fail-stop guards: no further actions

    # ------------------------------------------------------------------
    # Handoff adoption (successor side)
    # ------------------------------------------------------------------
    def _on_handoff(self, src: ProcessId, msg: M.HandoffMsg) -> None:
        adopted: Dict[ProcessId, M.HandoffMsg] = self.adopted
        adopted[msg.source] = msg
        # Adopt the departed pid's decision log so rule-6 inquiries about
        # its trees keep finding an answer.  Its commit-set trees (voted
        # but undecided at departure) are deliberately NOT adopted as any
        # decision: the root may yet commit them, and guessing "abort"
        # here could contradict it — they ride along for audit only.
        for tree, decision in msg.decisions:
            if tree not in self.decisions_seen:
                self._remember_decision(tree, decision)
        self._trace(
            T.K_HANDOFF,
            source=msg.source,
            spooled=len(msg.spooled),
            trees=len(msg.commit_set),
        )


__all__ = ["MembershipMixin"]
