"""Application models hosted by protocol processes.

The checkpoint/rollback algorithms are application-transparent: they snapshot
and restore an opaque application state.  An :class:`Application` must expose
exactly that — a serialisable :meth:`snapshot` and a :meth:`restore` — plus a
message handler so workloads can exercise real state changes.

:class:`CounterApp` is the default used by tests and benchmarks: its state is
a deterministic digest of every message consumed and every local step taken,
so two processes that "saw the same history" have equal states and a restored
process provably forgot undone receives.  That property is what lets the
consistency checkers validate rollbacks end-to-end rather than just at the
protocol layer.
"""

from __future__ import annotations

from typing import Any, Dict, List, Protocol

from repro.types import ProcessId


class Application(Protocol):
    """Minimal contract between a protocol process and its application."""

    def snapshot(self) -> Any:
        """Return a JSON-serialisable copy of the full application state."""
        ...

    def restore(self, state: Any) -> None:
        """Replace the application state with a previously snapshotted one."""
        ...

    def handle_message(self, src: ProcessId, payload: Any) -> None:
        """Consume one delivered normal message."""
        ...

    def local_step(self) -> None:
        """Perform one unit of local computation (workload-driven)."""
        ...


class CounterApp:
    """Deterministic, history-digesting application state.

    State components:

    * ``steps`` — number of local computation steps taken;
    * ``consumed`` — number of messages consumed;
    * ``digest`` — order-insensitive digest (sum of stable hashes) of the
      consumed ``(src, payload)`` pairs, so the state identifies *which*
      messages were consumed regardless of non-FIFO arrival order;
    * ``log`` — bounded list of the most recent consumed payloads, which
      gives tests something human-readable to assert on.
    """

    LOG_LIMIT = 64

    def __init__(self, pid: ProcessId) -> None:
        self.pid = pid
        self.steps = 0
        self.consumed = 0
        self.digest = 0
        self.log: List[Any] = []

    # -- Application protocol -------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        return {
            "steps": self.steps,
            "consumed": self.consumed,
            "digest": self.digest,
            "log": list(self.log),
        }

    def restore(self, state: Dict[str, Any]) -> None:
        self.steps = state["steps"]
        self.consumed = state["consumed"]
        self.digest = state["digest"]
        self.log = list(state["log"])

    def handle_message(self, src: ProcessId, payload: Any) -> None:
        self.consumed += 1
        # Stable across runs (unlike hash()): a small polynomial digest of
        # the repr, summed so ordering does not matter.
        text = repr((src, payload))
        h = 0
        for ch in text:
            h = (h * 1000003 + ord(ch)) % (2**61 - 1)
        self.digest = (self.digest + h) % (2**61 - 1)
        self.log.append(payload)
        if len(self.log) > self.LOG_LIMIT:
            self.log.pop(0)

    def local_step(self) -> None:
        self.steps += 1
