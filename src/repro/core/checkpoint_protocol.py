"""The checkpoint half of the algorithm: procedures b1-b4 (paper 3.5.2).

Implemented as a pure mixin over :class:`repro.core.engine.EngineBase`, which
supplies the shared state (``ledger``, ``store``, ``trees``,
``chkpt_commit_set``, suspension flags) and the effect-emitting helpers.  The
mixin never touches a kernel: traces, sends and timers are effects.

The paper's procedures block on ``await (pos_ack|neg_ack)``; in our
event-driven daemon each procedure runs to completion and parks the await in
the tree state (``pending_acks``).  :meth:`_chkpt_maybe_respond` is the
materialisation of condition b3: it fires whenever an ack or a
``ready_to_commit`` arrival might have completed the subtree.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro import tracekinds as T
from repro.core import messages as M
from repro.core.trees import ChkptTreeState
from repro.priorities import PRIORITY_NORMAL
from repro.types import ProcessId, TreeId


class ChkptProtocolMixin:
    """Procedures b1-b4.  Mixed into ``ProtocolEngine``."""

    # ------------------------------------------------------------------
    # b1 — chkpt_initiation
    # ------------------------------------------------------------------
    def initiate_checkpoint(self) -> Optional[TreeId]:
        """Autonomously start a global checkpointing instance (condition b1).

        Returns the new tree's timestamp, or ``None`` when b1's guard fails
        (a ``newchkpt`` already exists, the process is crashed, or it is
        suspended by a rollback).
        """
        if self.crashed or self.comm_suspended:
            return None
        if self.store.has_new:
            return None  # b1 requires newchkpt(i) = nil

        tree_id = self._new_tree_id()
        self._trace(T.K_INSTANCE_START, tree=tree_id, instance="checkpoint")
        tree = self.trees.open_chkpt(tree_id, parent=None)
        self._make_new_checkpoint(tree_id)
        self._propagate_chkpt_requests(tree)
        self._chkpt_maybe_respond(tree)
        return tree_id

    # ------------------------------------------------------------------
    # b2 — chkpt_request_propagation
    # ------------------------------------------------------------------
    def _on_chkpt_req(self, src: ProcessId, req: M.ChkptReq) -> None:
        """Handle ("chkpt_req", t, max_ij) from potential parent ``src``."""
        if self._is_true_chkpt_child(src, req):
            self._send_control(src, M.ChkptAck(tree=req.tree, positive=True))
        else:
            # If the rejection is because we undid the referenced message,
            # the requester's tentative checkpoint is doomed: the rollback
            # notice travels inside the neg_ack so it cannot lose the race.
            notice = self._undone_notice_for(src, req.max_label)
            self._send_control(
                src, M.ChkptAck(tree=req.tree, positive=False, undone_notice=notice)
            )
            return

        # Each recruitment is its own round; an earlier round that is still
        # collecting keeps its obligations through the ``older`` chain.
        tree = self.trees.open_chkpt_round(req.tree, parent=src)
        if not self.store.has_new:
            self._make_new_checkpoint(req.tree)
        else:
            # Reuse the shared uncommitted checkpoint for this new instance.
            self.chkpt_commit_set.add(req.tree)
            self._persist_commit_set()
        self._propagate_chkpt_requests(tree)
        self._chkpt_maybe_respond(tree)

    def _is_true_chkpt_child(self, src: ProcessId, req: M.ChkptReq) -> bool:
        """The three-clause true-child test of Section 3.1.

        P_i is a true chkpt-child of P_j iff (1) seqof(C_i) <= max_ij for its
        last committed checkpoint C_i, (2) it is not already in T(t), and
        (3) it has not undone any outgoing message with label max_ij.

        "Already in T(t)" means *active* membership: ``t`` is still in the
        commit set, i.e. our uncommitted checkpoint is shared with T(t).
        Once that checkpoint commits (possibly through another overlapping
        instance) or aborts, the participation is over, and a later request
        for the same tree referencing a *newer* message must recruit us
        afresh — otherwise the new dependency would be covered by no
        checkpoint and a subsequent rollback could orphan the requester's
        committed state (the neg_ack would silently break C1).
        """
        if req.tree in self.chkpt_commit_set:
            return False
        if self.decisions_seen.get(req.tree) == "abort":
            # The instance is already aborted; an aborted tree never
            # recruits again (a late request is an echo of pre-abort
            # fan-out, and re-joining would let abort storms recruit
            # forever).  A *committed* tree can still re-recruit: the new
            # round covers traffic sent after the committed checkpoint.
            return False
        oldchkpt = self.store.oldchkpt
        if oldchkpt is None or oldchkpt.seq > req.max_label:
            return False
        if self.ledger.has_undone_send_with_label(src, req.max_label):
            return False
        return True

    # ------------------------------------------------------------------
    # Shared helpers for b1/b2
    # ------------------------------------------------------------------
    def _make_new_checkpoint(self, tree_id: TreeId) -> None:
        """Take the uncommitted checkpoint and suspend normal sends.

        Mirrors the common block of b1/b2: snapshot state, advance ``n_i``,
        set ``chkpt_commit_set := {t}``, suspend normal message send.
        """
        seq = self.ledger.advance()
        self.store.take_new(
            seq, self.app.snapshot(), made_at=self.now, **self._ledger_manifest()
        )
        self.chkpt_commit_set = {tree_id}
        self._persist_commit_set()
        self._suspend_send()
        self._reset_checkpoint_timer()
        self._trace(T.K_CHKPT_TENTATIVE, seq=seq, tree=tree_id)

    def _propagate_chkpt_requests(self, tree: ChkptTreeState, interval: Optional[int] = None) -> None:
        """Send ("chkpt_req", t, max_ki) to every potential chkpt-child P_k.

        The potential children are the senders of live messages received in
        the checkpoint's interval ``[seq - 1, seq]`` (for a reused checkpoint
        this is the *existing* newchkpt's interval — any later traffic is
        blocked by the send suspension on the other side).  ``interval``
        defaults to the current newchkpt's; the Section 3.5.3 extension
        passes the interval of whichever pending checkpoint serves the tree.
        """
        if interval is None:
            newchkpt = self.store.newchkpt
            assert newchkpt is not None
            interval = newchkpt.seq - 1
        # Recruit over every interval back to the last committed checkpoint,
        # not just the newest one.  In failure-free executions the two are
        # identical (older intervals hold no live uncovered receives: commits
        # advance oldchkpt and branch-2 aborts roll the receives away), but a
        # Section 6 failure abort can strand a covered interval, and the next
        # instance must re-cover it or its receives would commit unbacked.
        oldchkpt = self.store.oldchkpt
        first = oldchkpt.seq if oldchkpt is not None else interval
        potentials = self.ledger.senders_in_range(min(first, interval), interval)
        potentials.pop(self.node_id, None)  # self-messages never force a child
        # Gracefully departed senders can never answer a chkpt_req; their
        # obligations travelled to a successor in the handoff, so their
        # messages count as settled history rather than live dependencies.
        for gone in self.departed_peers:
            potentials.pop(gone, None)
        # Union, not assignment: a re-recruited node merges the new round's
        # potential children into its existing collection.
        tree.pending_acks |= set(potentials)
        for child, max_label in sorted(potentials.items()):
            self._send_control(child, M.ChkptReq(tree=tree.tree, max_label=max_label))
        self._schedule_rule1_for_dead(potentials)

    def _schedule_rule1_for_dead(self, potentials: Dict[ProcessId, int]) -> None:
        """Rule 1, applied proactively at fan-out time.

        A potential chkpt-child already known to be down will never answer;
        re-deliver its (past) failure notice so the rule-1 handler aborts
        the instance and initiates the mandated rollback.  Scheduled for
        the same instant (not called inline) so the current procedure
        finishes first — the paper's procedures are exclusive.
        """
        for child in sorted(potentials):
            if self._believed_down(child):
                self._set_timer(
                    f"rule1-P{child}-{self._next_id('rule1')}",
                    0.0,
                    lambda dead=child: self.on_failure_notice(dead),
                    priority=PRIORITY_NORMAL,
                )

    # ------------------------------------------------------------------
    # Ack and response collection (completes b2's await; implements b3)
    # ------------------------------------------------------------------
    def _on_chkpt_ack(self, src: ProcessId, ack: M.ChkptAck) -> None:
        if ack.undone_notice is not None:
            # The rejection came with a rollback notice: our tentative
            # checkpoint consumed a message the sender has undone.  Process
            # the rollback first — it may abort this very instance.
            roll_tree, undo_seq, undone_upto = ack.undone_notice
            self._on_roll_req(
                src, M.RollReq(tree=roll_tree, undo_seq=undo_seq, undone_upto=undone_upto)
            )
        # Credit the oldest round still awaiting an ack from this child
        # (requests and their acks pair up FIFO per child across rounds).
        for state in self.trees.chkpt_rounds(ack.tree):
            if not state.closed and src in state.pending_acks:
                state.record_ack(src, ack.positive)
                self._chkpt_maybe_respond(state)
                return
        if ack.positive:
            # The instance was decided while this positive ack was in
            # flight — e.g. a rollback aborted it mid-recruitment.  The
            # late child holds a tentative checkpoint and awaits a decision
            # that the normal propagation will never deliver: send it now.
            self._answer_late_child(src, ack.tree, self.trees.chkpt.get(ack.tree))

    def _on_ready_to_commit(self, src: ProcessId, msg: M.ReadyToCommit) -> None:
        # Credit the oldest round in which this child is still outstanding.
        rounds = self.trees.chkpt_rounds(msg.tree)
        for state in rounds:
            if state.closed:
                continue
            if src in state.pending_acks or (
                src in state.true_children and src not in state.ready_children
            ):
                state.record_ready(src)
                self._chkpt_maybe_respond(state)
                return
        # No round expected this child: either the instance is already
        # decided (forward the decision) or the ready overtook its own
        # pos_ack on the newest open round (believe the child).
        for state in reversed(rounds):
            if not state.closed:
                state.record_ready(src)
                self._chkpt_maybe_respond(state)
                return
        self._answer_late_child(src, msg.tree, self.trees.chkpt.get(msg.tree))

    def _answer_late_child(
        self, child: ProcessId, tree_id: TreeId, tree: Optional[ChkptTreeState]
    ) -> None:
        """Forward an already-taken decision to a child that joined late."""
        decision = (tree.decision if tree is not None else None) or self.decisions_seen.get(tree_id)
        if decision == "abort":
            self._send_control(child, M.Abort(tree=tree_id))
        elif decision == "commit":
            self._send_control(child, M.Commit(tree=tree_id))

    def _chkpt_maybe_respond(self, tree: ChkptTreeState) -> None:
        """Condition b3: the subtree of this participation round is ready.

        Non-root round: forward ``ready_to_commit`` to the round's parent
        (once).  Root: decide.  If ``t`` is still in the commit set, commit
        the instance; otherwise the shared checkpoint was already committed
        or aborted through another instance — forward that outcome.
        """
        if tree.closed or tree.responded or not tree.subtree_ready:
            return
        tree.responded = True
        if not tree.is_root:
            self._send_control(tree.parent, M.ReadyToCommit(tree=tree.tree))
            return
        if tree.tree in self.chkpt_commit_set:
            self._commit_checkpoint(tree.tree)
        else:
            # Our shared checkpoint already committed through another
            # overlapping instance, so there is nothing to commit locally —
            # but our children in *this* tree still await a decision, and
            # their checkpoints supported the same (now committed) state.
            self._forward_decision(tree, "commit")

    def _forward_decision(self, tree: ChkptTreeState, decision: str) -> None:
        """Propagate a decision down tree ``t`` and close our participation.

        Kept separate from the local commit/abort action: a node whose
        checkpoint was already resolved through an overlapping instance must
        still forward the other instance's decision, or its subtree there
        would wait forever (the paper's "simply discarded" applies to the
        local action only).  All of our open rounds for the tree carry the
        same decision, so every round's children are notified.
        """
        message = M.Commit(tree=tree.tree) if decision == "commit" else M.Abort(tree=tree.tree)
        notified = set()
        for state in tree.chain():
            if state.closed:
                continue
            for child in sorted(state.true_children - notified):
                self._send_control(child, message)
                notified.add(child)
            if (
                decision == "abort"
                and state.parent is not None
                and not state.responded
            ):
                # We are aborting before having voted: veto the instance
                # upward as well, or ancestors would await our ready_to_commit
                # forever.  (After a vote the decision is the root's alone.)
                self._send_control(state.parent, M.Abort(tree=tree.tree))
            state.decision = decision
            state.closed = True

    # ------------------------------------------------------------------
    # b4 — chkpt_commit/abort
    # ------------------------------------------------------------------
    def _on_commit(self, src: ProcessId, msg: M.Commit) -> None:
        """Case 1 of b4: commit if ``t`` is in the commit set.

        Even when the local checkpoint was already resolved elsewhere, the
        decision must continue down this tree (see ``_forward_decision``).
        """
        self._remember_decision(msg.tree, "commit")
        if msg.tree in self.chkpt_commit_set:
            self._commit_checkpoint(msg.tree)
            return
        tree = self.trees.chkpt.get(msg.tree)
        if tree is not None:
            self._forward_decision(tree, "commit")

    def _commit_checkpoint(self, tree_id: TreeId) -> None:
        """Make the uncommitted checkpoint committed and resume sends.

        ``oldchkpt := newchkpt; newchkpt := nil; chkpt_commit_set := {}``.
        The decision is propagated down tree ``t``; instances sharing the
        checkpoint are now satisfied (their later decisions are discarded
        because the commit set is empty).
        """
        tree = self.trees.chkpt.get(tree_id)
        if tree is not None:
            self._forward_decision(tree, "commit")
        committed = self.store.commit_new()
        self.committed_history.append(committed)
        shared = self.chkpt_commit_set
        self.chkpt_commit_set = set()
        self._persist_commit_set()
        self._trace(T.K_CHKPT_COMMIT, seq=committed.seq, tree=tree_id)
        for other in shared:
            state = self.trees.chkpt.get(other)
            if state is not None and state.is_root:
                self._trace(T.K_INSTANCE_COMMIT, tree=other)
        self._resume_send()
        self._remember_decision(tree_id, "commit")

    def _on_abort(self, src: ProcessId, msg: M.Abort) -> None:
        """Case 2 of b4: drop ``t`` from the commit set; discard the shared
        checkpoint only when no other instance still references it."""
        self._remember_decision(msg.tree, "abort")
        self._abort_instance(msg.tree)

    def _abort_instance(self, tree_id: TreeId) -> None:
        tree = self.trees.chkpt.get(tree_id)
        was_member = tree_id in self.chkpt_commit_set
        if was_member:
            self.chkpt_commit_set.discard(tree_id)
            self._persist_commit_set()
            if not self.chkpt_commit_set and self.store.has_new:
                discarded = self.store.newchkpt
                self.store.discard_new()
                self._trace(T.K_CHKPT_ABORT, seq=discarded.seq, tree=tree_id)
                self._resume_send()
        if tree is not None:
            was_open_root = tree.is_root and not tree.closed
            self._forward_decision(tree, "abort")
            if was_open_root:
                self._trace(T.K_INSTANCE_ABORT, tree=tree_id)
