"""Message-label and interval bookkeeping (paper Sections 2 and 3).

Checkpoints and rollback points of a process are numbered sequentially by the
counter ``n_i``; a normal message sent while the counter is ``n`` carries
label ``n`` (it was sent within the interval ``[n, n+1]``).  All of the
algorithm's "who must join my tree" decisions reduce to queries over two logs
kept here:

* the **receive log** — for each received normal message: sender, label, and
  the receiver-side interval it arrived in (the value of ``n_i`` at receive
  time).  ``max_ij``, "the maximum label of the messages sent from P_i and
  received within the interval [seqof(C_j)-1, seqof(C_j)]", is a query over
  this log.
* the **send log** — for each sent normal message: destination and label.
  The potential roll-children of a rollback and the ``undo_seq`` it
  advertises are queries over this log.

Rollbacks never delete log entries; they flip an ``undone`` flag.  Labels are
monotone (the counter only ever increases), so an undone message's label is
never reused — the property that makes the discard filter for in-transit
undone messages exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import ProtocolError
from repro.types import Label, MessageId, ProcessId, Seq


@dataclass
class SentRecord:
    """One normal-message send: ``msg_id`` to ``dst`` with ``label``.

    ``undone_by`` records, for an undone send, the rollback that undid it
    (tree id, undo_seq, undone_upto) — used to re-issue the rollback notice
    when a checkpoint request references an already-undone message (see
    ``ChkptProtocolMixin._on_chkpt_req``).
    """

    msg_id: MessageId
    dst: ProcessId
    label: Label
    undone: bool = False
    undone_by: Optional[tuple] = None


@dataclass
class ReceivedRecord:
    """One normal-message receive.

    ``interval`` is the receiver's counter value at receive time: the message
    was received within the receiver's interval ``[interval, interval + 1]``.
    """

    msg_id: MessageId
    src: ProcessId
    label: Label
    interval: Seq
    undone: bool = False


class LabelLedger:
    """Send/receive logs plus the interval counter ``n_i`` for one process."""

    def __init__(self, pid: ProcessId) -> None:
        self.pid = pid
        self.n: Seq = 0
        self.sent: List[SentRecord] = []
        self.received: List[ReceivedRecord] = []
        # Discard filters: per sender, label ranges [lo, hi] of undone
        # in-transit messages that must be dropped on arrival.
        self._discard: Dict[ProcessId, List[Tuple[Label, Label]]] = {}

    # ------------------------------------------------------------------
    # Counter
    # ------------------------------------------------------------------
    def advance(self) -> Seq:
        """``n_i := n_i + 1`` (new checkpoint or rollback point); returns new n."""
        self.n += 1
        return self.n

    # ------------------------------------------------------------------
    # Normal-message recording
    # ------------------------------------------------------------------
    def record_send(self, msg_id: MessageId, dst: ProcessId) -> Label:
        """Log an outgoing message; returns the label it must carry (= n)."""
        record = SentRecord(msg_id=msg_id, dst=dst, label=self.n)
        self.sent.append(record)
        return record.label

    def record_receive(self, msg_id: MessageId, src: ProcessId, label: Label) -> ReceivedRecord:
        """Log an accepted incoming message in the current interval."""
        record = ReceivedRecord(msg_id=msg_id, src=src, label=label, interval=self.n)
        self.received.append(record)
        return record

    # ------------------------------------------------------------------
    # Checkpoint-tree queries (Section 3.1)
    # ------------------------------------------------------------------
    def max_label_from(self, src: ProcessId, interval: Seq) -> Label:
        """``max_ij``: max label of live messages from ``src`` received within
        ``[interval, interval + 1]``; 0 if none (paper's convention)."""
        labels = [
            r.label
            for r in self.received
            if r.src == src and r.interval == interval and not r.undone
        ]
        return max(labels) if labels else 0

    def senders_in_interval(self, interval: Seq) -> Dict[ProcessId, Label]:
        """All senders with live receives in the interval, with their max label.

        These are the *potential chkpt-children* of a checkpoint whose
        sequence number is ``interval + 1``.
        """
        result: Dict[ProcessId, Label] = {}
        for r in self.received:
            if r.interval == interval and not r.undone:
                if r.label > result.get(r.src, 0):
                    result[r.src] = r.label
        return result

    def senders_in_range(self, first: Seq, last: Seq) -> Dict[ProcessId, Label]:
        """Senders of live receives in intervals ``first..last``, with max label.

        The Section 3.5.3 extension recruits over every interval not yet
        certified by a committed checkpoint, so a commit can soundly promote
        the whole pending prefix.
        """
        result: Dict[ProcessId, Label] = {}
        for r in self.received:
            if first <= r.interval <= last and not r.undone:
                if r.label > result.get(r.src, 0):
                    result[r.src] = r.label
        return result

    def has_undone_send_with_label(self, dst: ProcessId, label: Label) -> bool:
        """True if any outgoing message to ``dst`` with exactly ``label`` was
        undone — the third clause of the true-chkpt-child test."""
        return any(
            r.undone for r in self.sent if r.dst == dst and r.label == label
        )

    def undone_send_info(self, dst: ProcessId, label: Label) -> Optional[tuple]:
        """The ``undone_by`` notice of an undone send to ``dst`` with ``label``."""
        for r in self.sent:
            if r.dst == dst and r.label == label and r.undone and r.undone_by is not None:
                return r.undone_by
        return None

    # ------------------------------------------------------------------
    # Rollback (Sections 3.2 and 3.5.2)
    # ------------------------------------------------------------------
    def undo_for_rollback(self, restored_seq: Seq) -> Tuple[List[SentRecord], List[ReceivedRecord]]:
        """Undo the effects of everything after the checkpoint ``restored_seq``.

        Marks undone every live send with ``label >= restored_seq`` (sent in
        or after the restored checkpoint's first interval) and every live
        receive with ``interval >= restored_seq``.  Returns the newly undone
        records so the caller can derive ``undo_seq`` and the potential
        roll-children, and emit trace records.
        """
        undone_sends: List[SentRecord] = []
        for r in self.sent:
            if not r.undone and r.label >= restored_seq:
                r.undone = True
                undone_sends.append(r)
        undone_receives: List[ReceivedRecord] = []
        for r in self.received:
            if not r.undone and r.interval >= restored_seq:
                r.undone = True
                undone_receives.append(r)
        return undone_sends, undone_receives

    @staticmethod
    def undo_summary(undone_sends: List[SentRecord], fallback: Label) -> Tuple[Label, Set[ProcessId]]:
        """Derive ``(bad_seq, potential roll-children)`` from undone sends.

        ``bad_seq`` is the minimum label among the newly undone messages —
        "the minimum label of the messages that have just been undone by the
        sender" (paper's comment on b6).  When nothing was undone there are
        no potential children and ``bad_seq`` falls back to the paper's
        ``n_i`` value (it is never sent anywhere in that case).
        """
        if not undone_sends:
            return fallback, set()
        bad_seq = min(r.label for r in undone_sends)
        children = {r.dst for r in undone_sends}
        return bad_seq, children

    def has_live_receive_from(self, src: ProcessId, min_label: Label) -> bool:
        """True-roll-child test: a live receive from ``src`` with label >=
        ``min_label`` exists."""
        return any(
            not r.undone and r.src == src and r.label >= min_label
            for r in self.received
        )

    # ------------------------------------------------------------------
    # Discard filters for in-transit undone messages
    # ------------------------------------------------------------------
    def install_discard_filter(self, src: ProcessId, lo: Label, hi: Label) -> None:
        """Discard future normal messages from ``src`` with label in [lo, hi]."""
        if lo > hi:
            raise ProtocolError(f"bad discard range [{lo}, {hi}]")
        self._discard.setdefault(src, []).append((lo, hi))

    def should_discard(self, src: ProcessId, label: Label) -> bool:
        """True if an arriving message matches an installed discard filter."""
        return any(lo <= label <= hi for lo, hi in self._discard.get(src, []))

    # ------------------------------------------------------------------
    # Introspection (used by analysis and tests)
    # ------------------------------------------------------------------
    def live_receives(self) -> List[ReceivedRecord]:
        return [r for r in self.received if not r.undone]

    def live_sends(self) -> List[SentRecord]:
        return [r for r in self.sent if not r.undone]

    def snapshot_counts(self) -> Dict[str, int]:
        """Cheap summary for debugging and stats."""
        return {
            "n": self.n,
            "sent": len(self.sent),
            "received": len(self.received),
            "sent_undone": sum(1 for r in self.sent if r.undone),
            "received_undone": sum(1 for r in self.received if r.undone),
        }
