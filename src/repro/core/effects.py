"""Typed output effects emitted by the sans-IO protocol engine.

Every externally visible action of the protocol is one of these values.  An
adapter interprets each effect against its kernel:

========================  ====================================================
effect                    simulation / live-runtime interpretation
========================  ====================================================
``Send``                  hand the envelope to the network
``Broadcast``             expand ``body`` into one control send per live peer
``SetTimer``              arm a named, cancellable timer (optionally with an
                          RNG-jittered delay drawn from the kernel's seeded
                          stream); fire back a ``TimerFired`` event
``CancelTimer``           cancel the named timer
``EmitTrace``             record a trace event (the adapter stamps the kernel
                          time and this process's pid)
``SaveCheckpoint``        write a checkpoint to stable storage ("initial"
                          committed slot, uncommitted "new" slot, or a stack
                          "push" for the Section 3.5.3 extension)
``CommitThrough``         promote the uncommitted checkpoint (slot commit, or
                          stack commit-through-``seq``)
``DiscardCheckpoints``    drop uncommitted checkpoints (slot discard, or
                          stack discard-from-``from_seq``)
``PersistMeta``           persist small protocol metadata (the recoverable
                          commit set and decision log of Section 6)
``ObserveDecision``       let the spooler replicas record a decision
``Redeliver``             synchronously re-inject a spooled envelope
``Rollback``              informational: the state was restored to ``to_seq``
                          (no kernel action; consumed by analysis harnesses)
``Handoff``               wrap the departing engine's obligations into a
                          ``HandoffMsg`` control message to its successor
========================  ====================================================

The engine state already reflects each effect when it is emitted; adapters
only mirror the world, they never answer back.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.compat import slotted_dataclass
from repro.net.message import Envelope
from repro.priorities import PRIORITY_TIMER
from repro.types import ProcessId, Seq, SimTime, TreeId

#: SaveCheckpoint/CommitThrough/DiscardCheckpoints target the two-slot store
#: of the base algorithm ("slot") or the pending stack of the extension
#: ("stack").
SLOT = "slot"
STACK = "stack"


@slotted_dataclass(frozen=True)
class Send:
    """Transmit ``envelope`` over the network."""

    envelope: Envelope


@slotted_dataclass(frozen=True)
class Broadcast:
    """Send control ``body`` to every live peer (Section 6 inquiries)."""

    body: Any


@slotted_dataclass(frozen=True)
class SetTimer:
    """Arm the named timer; the adapter replaces an existing one.

    ``jitter`` is ``(stream_name, lo, hi)``: the adapter adds a uniform draw
    from the kernel's named RNG stream to ``delay``, keeping the engine free
    of randomness while reproducing the seeded behaviour exactly.
    """

    name: str
    delay: SimTime
    priority: int = PRIORITY_TIMER
    jitter: Optional[Tuple[str, float, float]] = None


@slotted_dataclass(frozen=True)
class CancelTimer:
    """Cancel the named timer if pending."""

    name: str


@slotted_dataclass(frozen=True)
class EmitTrace:
    """Record a trace event of ``kind`` with ``fields``.

    The adapter supplies the two kernel-owned fields: the current time and
    this process's pid.
    """

    kind: str
    fields: Dict[str, Any]


@slotted_dataclass(frozen=True)
class SaveCheckpoint:
    """Write a checkpoint record to stable storage.

    ``kind`` — "initial" (committed birth checkpoint), "new" (the two-slot
    uncommitted ``newchkpt``) or "push" (extension stack entry).
    """

    kind: str
    seq: Seq
    state: Any
    made_at: SimTime
    meta: Dict[str, Any]
    store: str = SLOT


@slotted_dataclass(frozen=True)
class CommitThrough:
    """``oldchkpt := newchkpt`` (slot), or commit the stack through ``seq``."""

    seq: Seq
    store: str = SLOT


@slotted_dataclass(frozen=True)
class DiscardCheckpoints:
    """Discard the uncommitted slot, or stack entries with seq >= from_seq."""

    from_seq: Optional[Seq] = None
    store: str = SLOT


@slotted_dataclass(frozen=True)
class PersistMeta:
    """Persist a small metadata value under ``key`` ("commit_set" etc.)."""

    key: str
    value: Any


@slotted_dataclass(frozen=True)
class ObserveDecision:
    """Expose a (kind, tree) decision to the spooler replicas (rule 3)."""

    kind: str
    tree: Optional[TreeId]


@slotted_dataclass(frozen=True)
class Redeliver:
    """Synchronously re-inject a spooled envelope into this process."""

    envelope: Envelope


@slotted_dataclass(frozen=True)
class Rollback:
    """The engine restored its application state to checkpoint ``to_seq``."""

    to_seq: Seq
    tree: Optional[TreeId] = None


@slotted_dataclass(frozen=True)
class Handoff:
    """Hand the departing engine's checkpoint obligations to ``successor``.

    Emitted while handling a :class:`repro.core.events.Leave` addressed to
    this engine.  The adapter wraps the payload into a
    :class:`repro.core.messages.HandoffMsg` control message and transmits it
    to ``successor`` over the ordinary network path, so the handoff is
    wire-serializable and crosses shard links like any other control
    traffic.

    ``commit_set`` — trees the departing pid's uncommitted checkpoint was a
    member of; ``decisions`` — the ``(tree, decision)`` log so the successor
    can answer rule-6 inquiries on the departed pid's behalf;
    ``uncommitted_seq`` — the seq of the departed pid's (now aborted)
    uncommitted checkpoint, if any; ``spooled`` — ``(src, label)``
    summaries of the dead letters drained from its spooler group.
    """

    successor: ProcessId
    source: ProcessId
    commit_set: Tuple[TreeId, ...] = ()
    decisions: Tuple[Tuple[TreeId, str], ...] = ()
    uncommitted_seq: Optional[Seq] = None
    spooled: Tuple[Tuple[ProcessId, Optional[int]], ...] = ()


Effect = Any  # any of the classes above; kept loose for Python 3.9

__all__ = [
    "Broadcast",
    "CancelTimer",
    "CommitThrough",
    "DiscardCheckpoints",
    "Effect",
    "EmitTrace",
    "Handoff",
    "ObserveDecision",
    "PersistMeta",
    "Redeliver",
    "Rollback",
    "SLOT",
    "STACK",
    "SaveCheckpoint",
    "Send",
    "SetTimer",
]
