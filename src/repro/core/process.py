"""`CheckpointProcess` — a simulated process running the Leu-Bhargava daemon.

This class glues together the substrate (:class:`repro.sim.node.Node`), the
bookkeeping (:class:`~repro.core.labels.LabelLedger`,
:class:`~repro.core.trees.TreeRegistry`,
:class:`~repro.stable.checkpoint.CheckpointStore`) and the protocol mixins
(procedures b1-b4 in :mod:`~repro.core.checkpoint_protocol`, b5-b8 in
:mod:`~repro.core.rollback_protocol`, Section 6 in
:mod:`~repro.core.recovery`).

Suspension model (paper 3.5.2 comments):

* a pending ``newchkpt`` suspends *sending* normal messages only — receives
  and local computation continue;
* membership in an unfinished rollback instance suspends *sending and
  receiving*; incoming normal messages are discarded;
* application sends issued while sending is suspended are queued in the
  output queue and flushed on resume (introduction: "the process saves
  outgoing messages in the output queue for later transmission");
* a rollback clears the output queue (queued messages belong to the undone
  computation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core import messages as M
from repro.core.app import Application, CounterApp
from repro.core.checkpoint_protocol import ChkptProtocolMixin
from repro.core.labels import LabelLedger
from repro.core.recovery import RecoveryMixin
from repro.core.rollback_protocol import RollProtocolMixin
from repro.core.trees import TreeRegistry
from repro.net.message import Envelope, control, normal
from repro.sim import trace as T
from repro.sim.node import Node
from repro.stable.checkpoint import CheckpointStore
from repro.stable.storage import InMemoryStableStorage, StableStorage
from repro.types import MessageId, ProcessId, SimTime, TreeId


@dataclass
class ProtocolConfig:
    """Tunables for a :class:`CheckpointProcess`.

    ``checkpoint_interval`` — period of the autonomous checkpoint timer
    (condition b1); ``None`` disables the timer (tests and scripted scenarios
    call :meth:`CheckpointProcess.initiate_checkpoint` directly).

    ``failure_resilience`` — enable the Section 6 exception handlers (rules
    1-6).  Off by default so the base algorithm can be studied in isolation.

    ``ack_timeout`` / ``decision_timeout`` — how long a resilient process
    waits on a peer before the failure handlers treat it as unresponsive;
    only used when ``failure_resilience`` is on and complements the failure
    detector (which is the primary trigger).

    ``inquiry_retry_interval`` — how often a blocked process re-broadcasts a
    rule-6 decision inquiry while no answer arrives.
    """

    checkpoint_interval: Optional[SimTime] = None
    failure_resilience: bool = False
    ack_timeout: SimTime = 30.0
    decision_timeout: SimTime = 30.0
    inquiry_retry_interval: SimTime = 10.0


class CheckpointProcess(ChkptProtocolMixin, RollProtocolMixin, RecoveryMixin, Node):
    """One process ``P_i`` plus its checkpoint/rollback daemon."""

    def __init__(
        self,
        pid: ProcessId,
        config: Optional[ProtocolConfig] = None,
        app: Optional[Application] = None,
        storage: Optional[StableStorage] = None,
    ):
        super().__init__(pid)
        self.config = config or ProtocolConfig()
        self.app: Application = app or CounterApp(pid)
        self.storage = storage or InMemoryStableStorage()
        self.store = CheckpointStore(self.storage)
        self.ledger = LabelLedger(pid)
        self.trees = TreeRegistry()
        self.chkpt_commit_set: set = set()
        self.roll_restart_set: set = set()
        self.output_queue: List[Tuple[ProcessId, Any]] = []
        self.send_suspended = False   # pending newchkpt blocks normal sends
        self.comm_suspended = False   # unfinished rollback blocks send+receive
        # Decisions this process has observed, for Section 6 inquiries.
        self.decisions_seen: Dict[TreeId, str] = {}
        self._recovering = False
        self._open_inquiries: Dict[TreeId, str] = {}
        self._pending_spool: List[Envelope] = []
        # Analysis-only archive of every committed checkpoint, in order.
        self.committed_history: List[Any] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        """Install the initial committed checkpoint and arm the b1 timer.

        The birth checkpoint has sequence number 1 and the interval counter
        starts there too, so the first interval's messages carry label 1 and
        label 0 stays free as the "nothing received" sentinel (paper Fig. 2).
        """
        self.ledger.n = 1
        initial = self.store.initialize(self.app.snapshot(), made_at=self.now)
        initial.meta.update(self._ledger_manifest())
        self.committed_history = [initial]
        self._reset_checkpoint_timer()

    def _ledger_manifest(self) -> Dict[str, Any]:
        """Which live sends/receives the state being checkpointed reflects.

        Stored in each checkpoint's ``meta`` purely for the analysis layer:
        the C1/C2 checkers and the minimality theorems are verified against
        these manifests (see :mod:`repro.analysis.consistency`).  The
        protocol itself never reads them.
        """
        return {
            "recv": sorted(
                (r.src, r.msg_id.send_index) for r in self.ledger.live_receives()
            ),
            "sent": sorted(
                (r.dst, r.msg_id.send_index) for r in self.ledger.live_sends()
            ),
        }

    def _reset_checkpoint_timer(self) -> None:
        """"After P_i makes a new checkpoint, its checkpoint timer is reset."""
        if self.config.checkpoint_interval is None:
            return
        jitter = self.sim.rng.stream("ckpt-timer", self.node_id).uniform(0.0, 0.1)
        self.set_timer(
            "checkpoint",
            self.config.checkpoint_interval + jitter,
            self._checkpoint_timer_fired,
        )

    def _checkpoint_timer_fired(self) -> None:
        self.initiate_checkpoint()
        self._reset_checkpoint_timer()

    # ------------------------------------------------------------------
    # Identifiers
    # ------------------------------------------------------------------
    def _new_tree_id(self) -> TreeId:
        return TreeId(self.node_id, self.sim.ids.next(("tree", self.node_id)))

    def _new_msg_id(self) -> MessageId:
        return MessageId(self.node_id, self.sim.ids.next(("msg", self.node_id)))

    # ------------------------------------------------------------------
    # Suspension bookkeeping
    # ------------------------------------------------------------------
    @property
    def can_send_normal(self) -> bool:
        return not (self.crashed or self.send_suspended or self.comm_suspended)

    def _suspend_send(self) -> None:
        if not self.send_suspended:
            self.send_suspended = True
            self.sim.trace.record(self.now, T.K_SUSPEND_SEND, pid=self.node_id)

    def _resume_send(self) -> None:
        if self.send_suspended:
            self.send_suspended = False
            self.sim.trace.record(self.now, T.K_RESUME_SEND, pid=self.node_id)
            self._flush_output_queue()

    def _suspend_comm(self) -> None:
        if not self.comm_suspended:
            self.comm_suspended = True
            self.sim.trace.record(self.now, T.K_SUSPEND_ALL, pid=self.node_id)

    def _resume_comm(self) -> None:
        if self.comm_suspended:
            self.comm_suspended = False
            self.sim.trace.record(self.now, T.K_RESUME_ALL, pid=self.node_id)
            self._flush_output_queue()
            self._drain_pending_spool()

    def _flush_output_queue(self) -> None:
        if not self.can_send_normal:
            return
        queued, self.output_queue = self.output_queue, []
        for dst, payload in queued:
            self._transmit_normal(dst, payload)

    # ------------------------------------------------------------------
    # Normal-message plane (workload-facing API)
    # ------------------------------------------------------------------
    def send_app_message(self, dst: ProcessId, payload: Any) -> None:
        """Application-level send; queued if sending is currently suspended."""
        if self.crashed:
            return
        if self.can_send_normal:
            self._transmit_normal(dst, payload)
        else:
            self.output_queue.append((dst, payload))

    def local_step(self) -> None:
        """One unit of local application computation (never suspended)."""
        if not self.crashed:
            self.app.local_step()

    def _transmit_normal(self, dst: ProcessId, payload: Any) -> None:
        msg_id = self._new_msg_id()
        label = self.ledger.record_send(msg_id, dst)
        body = M.NormalBody(
            payload=payload,
            markers=self._current_markers(),
            incarnation=self._current_incarnation(),
        )
        self.sim.trace.record(
            self.now, T.K_SEND, pid=self.node_id,
            msg_id=msg_id, dst=dst, label=label, payload=payload,
        )
        self.send(normal(self.node_id, dst, msg_id, label, body))

    def _current_markers(self) -> tuple:
        """Markers piggybacked on normal sends (empty in the base algorithm;
        the Section 3.5.3 extension overrides this)."""
        return ()

    def _current_incarnation(self) -> int:
        """Sender incarnation stamp (always 0 here; Tamir-Séquin overrides)."""
        return 0

    def _believed_down(self, pid: ProcessId) -> bool:
        """Is ``pid`` currently believed failed by the status monitor?

        Only meaningful with failure resilience on; without it the base
        algorithm assumes no failures and never consults the detector.
        """
        if not self.config.failure_resilience:
            return False
        detector = self.sim.failure_detector
        return detector is not None and pid in detector.believed_down()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def on_envelope(self, envelope: Envelope) -> None:
        if self.crashed:
            return
        if envelope.is_normal:
            self._on_normal(envelope)
        else:
            self._dispatch_control(envelope.src, envelope.body)

    def _on_normal(self, envelope: Envelope) -> None:
        src, label, msg_id = envelope.src, envelope.label, envelope.msg_id
        if self.comm_suspended:
            # "The suspend statement causes all subsequent incoming messages
            # to be discarded."
            self.sim.trace.record(
                self.now, T.K_DISCARD, pid=self.node_id,
                msg_id=msg_id, src=src, label=label, reason="roll_suspended",
            )
            return
        if self.ledger.should_discard(src, label):
            # The sender undid this message before we ever consumed it.
            self.sim.trace.record(
                self.now, T.K_DISCARD, pid=self.node_id,
                msg_id=msg_id, src=src, label=label, reason="undone_in_transit",
            )
            return
        body: M.NormalBody = envelope.body
        self._before_consume_normal(src, body)
        self.ledger.record_receive(msg_id, src, label)
        self.sim.trace.record(
            self.now, T.K_RECEIVE, pid=self.node_id, msg_id=msg_id, src=src, label=label
        )
        self.app.handle_message(src, body.payload)

    def _before_consume_normal(self, src: ProcessId, body: M.NormalBody) -> None:
        """Extension hook: act on piggybacked markers before consuming."""

    def _dispatch_control(self, src: ProcessId, body: Any) -> None:
        self.sim.trace.record(
            self.now, T.K_CTRL_RECEIVE, pid=self.node_id,
            src=src, msg_type=body.kind, tree=getattr(body, "tree", None),
        )
        if isinstance(body, M.ChkptReq):
            self._on_chkpt_req(src, body)
        elif isinstance(body, M.ChkptAck):
            self._on_chkpt_ack(src, body)
        elif isinstance(body, M.ReadyToCommit):
            self._on_ready_to_commit(src, body)
        elif isinstance(body, M.Commit):
            self._on_commit(src, body)
        elif isinstance(body, M.Abort):
            self._on_abort(src, body)
        elif isinstance(body, M.RollReq):
            self._on_roll_req(src, body)
        elif isinstance(body, M.RollAck):
            self._on_roll_ack(src, body)
        elif isinstance(body, M.RollComplete):
            self._on_roll_complete(src, body)
        elif isinstance(body, M.Restart):
            self._on_restart(src, body)
        elif isinstance(body, M.DecisionInquiry):
            self._on_decision_inquiry(src, body)
        elif isinstance(body, M.DecisionReply):
            self._on_decision_reply(src, body)

    def _send_control(self, dst: ProcessId, body: Any) -> None:
        fields = {"dst": dst, "msg_type": body.kind, "tree": getattr(body, "tree", None)}
        if hasattr(body, "positive"):
            fields["positive"] = body.positive
        self.sim.trace.record(self.now, T.K_CTRL_SEND, pid=self.node_id, **fields)
        # Decisions are also observed by spoolers so restarting processes can
        # learn them (Section 6, rule 3).
        if isinstance(body, (M.Commit, M.Abort, M.Restart)):
            self.sim.network.observe_decision((body.kind, body.tree))
        self.send(control(self.node_id, dst, body))

    # ------------------------------------------------------------------
    # Shared protocol helpers
    # ------------------------------------------------------------------
    def _remember_decision(self, tree_id: TreeId, decision: str) -> None:
        """Record an observed instance decision for Section 6 inquiries.

        With failure resilience on, the record is also persisted: a decision
        a process applied to its stable checkpoints must survive its own
        crash, or a recovering peer's inquiry could go unanswered forever
        while the decided state lives on.
        """
        if tree_id is None or tree_id in self.decisions_seen:
            return
        self.decisions_seen[tree_id] = decision
        if self.config.failure_resilience:
            self.storage.put(
                "decisions",
                [
                    [t.initiator, t.initiation_seq, d]
                    for t, d in self.decisions_seen.items()
                ],
            )

    def _load_decisions(self) -> Dict[TreeId, str]:
        raw = self.storage.get("decisions", [])
        return {TreeId(i, s): d for i, s, d in raw}

    def _persist_commit_set(self) -> None:
        """Keep chkpt_commit_set recoverable: rule 3 needs it after a crash."""
        self.storage.put(
            "commit_set", sorted((t.initiator, t.initiation_seq) for t in self.chkpt_commit_set)
        )

    def _load_commit_set(self) -> set:
        raw = self.storage.get("commit_set", [])
        return {TreeId(i, s) for i, s in raw}
