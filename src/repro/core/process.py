"""`CheckpointProcess` — a kernel-bound adapter around the sans-IO engine.

The protocol itself lives in :class:`repro.core.engine.ProtocolEngine`; this
class is the thin glue that lets a kernel (the discrete-event simulation via
:class:`repro.sim.node.Node`, or the live asyncio runtime through the same
``Node`` interface) drive that engine:

* kernel callbacks (``on_start``, ``on_envelope``, timers, crash/recover,
  failure notices) are translated into typed :mod:`repro.core.events` and fed
  to ``engine.handle``;
* the engine's typed :mod:`repro.core.effects` are interpreted eagerly, the
  moment each is emitted, against the kernel: sends go to the network,
  traces to the trace sink, ``SaveCheckpoint``/``CommitThrough`` to the real
  :class:`~repro.stable.checkpoint.CheckpointStore`, timers to the node's
  timer table (with the RNG jitter drawn from the kernel's seeded stream).

Attribute access is forwarded to the engine, so tests and analysis code can
keep reading ``proc.ledger`` / ``proc.chkpt_commit_set`` — and monkey-patch
engine hooks through the process — without knowing about the split.  The
adapter keeps only the kernel-facing state: the real stable store, the node
timer table, and the ``crashed`` flag the kernel toggles.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from repro.core import effects as FX
from repro.core import events as EV
from repro.core import messages as M
from repro.core.app import Application
from repro.core.engine import ProtocolConfig, ProtocolEngine  # noqa: F401  (re-export)
from repro.net.message import Envelope, control
from repro.sim import trace as T
from repro.sim.node import Node
from repro.stable.checkpoint import CheckpointStore
from repro.stable.storage import InMemoryStableStorage, StableStorage
from repro.types import ProcessId, TreeId


class CheckpointProcess(Node):
    """One process ``P_i`` plus its checkpoint/rollback daemon."""

    #: Engine variant this adapter drives; subclasses override.
    engine_class = ProtocolEngine

    def __init__(
        self,
        pid: ProcessId,
        config: Optional[ProtocolConfig] = None,
        app: Optional[Application] = None,
        storage: Optional[StableStorage] = None,
    ) -> None:
        # ``engine`` must exist (as None) before anything else so that
        # __setattr__/__getattr__ can probe it during construction.
        object.__setattr__(self, "engine", None)
        super().__init__(pid)
        self.storage = storage or InMemoryStableStorage()
        self.store = CheckpointStore(self.storage)
        engine = self.engine_class(pid, config=config, app=app)
        self._hydrate_engine(engine)
        engine._sink = self._apply_effect
        self.engine = engine

    def _hydrate_engine(self, engine: ProtocolEngine) -> None:
        """Mirror pre-existing stable state into the pure engine stores.

        Matters only when the process is constructed over a non-empty
        storage (e.g. file-backed restarts); effects are not emitted — the
        real store already holds this state.
        """
        engine.store.oldchkpt = self.store.oldchkpt
        engine.store.newchkpt = self.store.newchkpt
        engine._persisted_commit_set = self.storage.get("commit_set", [])
        engine._persisted_decisions = self.storage.get("decisions", [])

    # ------------------------------------------------------------------
    # Attribute forwarding: the engine owns the protocol state
    # ------------------------------------------------------------------
    def __getattr__(self, name: str) -> Any:
        engine = object.__getattribute__(self, "__dict__").get("engine")
        if engine is not None:
            try:
                return getattr(engine, name)
            except AttributeError:
                pass
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    def __setattr__(self, name: str, value: Any) -> None:
        d = object.__getattribute__(self, "__dict__")
        engine = d.get("engine")
        if name in d or engine is None or name == "engine":
            object.__setattr__(self, name, value)
        elif hasattr(engine, name):
            # Protocol state (and monkey-patched hooks) live on the engine.
            setattr(engine, name, value)
        else:
            object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Kernel callbacks -> engine events
    # ------------------------------------------------------------------
    def _detector_views(self) -> Tuple[Optional[frozenset], Optional[Tuple[ProcessId, ...]]]:
        detector = self.sim.failure_detector
        if detector is None:
            return None, None
        down = frozenset(detector.believed_down())
        status_down = tuple(
            pid for pid, operational in detector.status_snapshot().items() if not operational
        )
        return down, status_down

    def on_start(self) -> None:
        self.engine.handle(EV.Start(peers=tuple(self.sim.process_ids), at=self.now))

    def on_envelope(self, envelope: Envelope) -> None:
        if self.crashed:
            return
        down, status_down = self._detector_views()
        self.engine.handle(
            EV.Deliver(envelope=envelope, at=self.now, down=down, status_down=status_down)
        )

    def _timer_fired(self, name: str) -> None:
        down, status_down = self._detector_views()
        self.engine.handle(
            EV.TimerFired(name=name, at=self.now, down=down, status_down=status_down)
        )

    def initiate_checkpoint(self) -> Optional[TreeId]:
        """Condition b1: autonomously start a checkpointing instance."""
        down, status_down = self._detector_views()
        self.engine.handle(
            EV.InitiateCheckpoint(at=self.now, down=down, status_down=status_down)
        )
        return self.engine.last_result

    def initiate_rollback(self) -> Optional[TreeId]:
        """Condition b5: a transient error was detected; roll back."""
        down, status_down = self._detector_views()
        self.engine.handle(
            EV.InitiateRollback(at=self.now, down=down, status_down=status_down)
        )
        return self.engine.last_result

    def send_app_message(self, dst: ProcessId, payload: Any) -> None:
        self.engine.handle(EV.AppSend(dst=dst, payload=payload, at=self.now))

    def local_step(self) -> None:
        self.engine.handle(EV.LocalStep(at=self.now))

    def app_op(self, op: Any) -> None:
        """Apply a tracked application-state mutation (see ``repro.app``)."""
        self.engine.handle(EV.AppOp(op=op, at=self.now))

    def on_crash(self) -> None:
        self.engine.handle(EV.Fail(at=self.now))

    def on_recover(self, stable_state: Any) -> None:
        group = self.sim.network.spooler_for(self.node_id)
        if group is None:
            spooled = None
            spool_decisions = None
        else:
            spooled = tuple(group.drain(self.sim.is_alive))
            seen = group.decisions_seen(self.sim.is_alive)
            spool_decisions = None if seen is None else tuple(seen)
        down, status_down = self._detector_views()
        self.engine.handle(
            EV.Recover(
                at=self.now,
                down=down,
                status_down=status_down,
                spooled=spooled,
                spool_decisions=spool_decisions,
            )
        )

    def on_failure_notice(self, pid: ProcessId) -> None:
        down, status_down = self._detector_views()
        self.engine.handle(
            EV.FailureNotice(pid=pid, at=self.now, down=down, status_down=status_down)
        )

    def on_recovery_notice(self, pid: ProcessId) -> None:
        self.engine.handle(EV.RecoveryNotice(pid=pid, at=self.now))

    # -- dynamic membership (repro.membership) -------------------------
    def on_join_peer(self, pid: ProcessId) -> None:
        self.engine.handle(
            EV.Join(pid=pid, peers=tuple(self.sim.process_ids), at=self.now)
        )

    def on_leave_peer(self, pid: ProcessId, successor: Optional[ProcessId]) -> None:
        self.engine.handle(EV.Leave(pid=pid, successor=successor, at=self.now))

    def on_leave(self, successor: Optional[ProcessId], spooled: tuple = ()) -> None:
        self.engine.handle(
            EV.Leave(
                pid=self.node_id,
                successor=successor,
                spooled=tuple(spooled),
                at=self.now,
            )
        )

    # ------------------------------------------------------------------
    # Engine effects -> kernel actions
    # ------------------------------------------------------------------
    def _apply_effect(self, eff: FX.Effect) -> None:
        if isinstance(eff, FX.EmitTrace):
            self.sim.trace.record(self.now, eff.kind, pid=self.node_id, **eff.fields)
        elif isinstance(eff, FX.Send):
            self.send(eff.envelope)
        elif isinstance(eff, FX.SetTimer):
            delay = eff.delay
            if eff.jitter is not None:
                stream, lo, hi = eff.jitter
                delay += self.sim.rng.stream(stream, self.node_id).uniform(lo, hi)
            self.set_timer(
                eff.name,
                delay,
                lambda name=eff.name: self._timer_fired(name),
                priority=eff.priority,
            )
        elif isinstance(eff, FX.CancelTimer):
            self.cancel_timer(eff.name)
        elif isinstance(eff, FX.SaveCheckpoint):
            self._apply_save_checkpoint(eff)
        elif isinstance(eff, FX.CommitThrough):
            if eff.store == FX.SLOT:
                self.store.commit_new()
            else:
                self.multi_store.commit_through(eff.seq)
        elif isinstance(eff, FX.DiscardCheckpoints):
            if eff.store == FX.SLOT:
                self.store.discard_new()
            else:
                self.multi_store.discard_from(eff.from_seq)
        elif isinstance(eff, FX.PersistMeta):
            self.storage.put(eff.key, eff.value)
        elif isinstance(eff, FX.ObserveDecision):
            self.sim.network.observe_decision((eff.kind, eff.tree))
        elif isinstance(eff, FX.Redeliver):
            self.sim.network.redeliver(eff.envelope)
        elif isinstance(eff, FX.Broadcast):
            body = eff.body
            for pid in self.sim.process_ids:
                if pid != self.node_id and self.sim.is_alive(pid):
                    self.sim.trace.record(
                        self.now, T.K_CTRL_SEND, pid=self.node_id,
                        dst=pid, msg_type=body.kind, tree=getattr(body, "tree", None),
                    )
                    self.send(control(self.node_id, pid, body))
        elif isinstance(eff, FX.Handoff):
            self.sim.trace.record(
                self.now, T.K_CTRL_SEND, pid=self.node_id,
                dst=eff.successor, msg_type="handoff", tree=None,
            )
            self.send(
                control(
                    self.node_id,
                    eff.successor,
                    M.HandoffMsg(
                        source=eff.source,
                        commit_set=eff.commit_set,
                        decisions=eff.decisions,
                        uncommitted_seq=eff.uncommitted_seq,
                        spooled=eff.spooled,
                    ),
                )
            )
        elif isinstance(eff, FX.Rollback):
            pass  # informational; the engine already restored its app state

    def _apply_save_checkpoint(self, eff: FX.SaveCheckpoint) -> None:
        store = self.store if eff.store == FX.SLOT else self.multi_store
        if eff.kind == "initial":
            record = store.initialize(eff.state, made_at=eff.made_at)
            record.meta.update(eff.meta)
        elif eff.kind == "new":
            store.take_new(eff.seq, eff.state, made_at=eff.made_at, **eff.meta)
        else:  # "push" — extension stack entry
            store.push(eff.seq, eff.state, made_at=eff.made_at, **eff.meta)
