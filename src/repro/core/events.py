"""Typed input events for the sans-IO :class:`repro.core.engine.ProtocolEngine`.

An adapter (the simulation :class:`repro.sim.node.Node` process, the live
:class:`repro.runtime.loop.AsyncRuntime` process, or the model checker's
:mod:`repro.mc` harness) translates whatever happens in its world into one of
these events and feeds it to ``ProtocolEngine.handle``.  The engine never
talks to a kernel: everything it may legitimately know about the outside —
the current time, which peers the failure detector believes down, what a
spooler replica held — rides on the event itself.

Field conventions:

* ``at`` — the kernel time the event happened; becomes the engine's notion
  of "now" (used for checkpoint ``made_at`` stamps).
* ``down`` — frozen snapshot of the failure detector's believed-down set,
  or ``None`` when resilience is off / no detector exists.  Drives the
  proactive rule-1/rule-2 handling.
* ``status_down`` — processes the status monitor reports non-operational
  (assumption c of the paper), or ``None`` without a detector.  Consumed by
  the rule-3 recovery tail, which replays missed failure notices.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from repro.compat import slotted_dataclass
from repro.net.message import Envelope
from repro.types import ProcessId, SimTime


@slotted_dataclass(frozen=True)
class Start:
    """The kernel started this process (fires once, before any traffic)."""

    peers: Tuple[ProcessId, ...]
    at: SimTime = 0.0


@slotted_dataclass(frozen=True)
class Deliver:
    """The network delivered ``envelope`` to this process."""

    envelope: Envelope
    at: SimTime = 0.0
    down: Optional[frozenset] = None
    status_down: Optional[Tuple[ProcessId, ...]] = None


@slotted_dataclass(frozen=True)
class TimerFired:
    """A timer previously requested via a ``SetTimer`` effect expired."""

    name: str
    at: SimTime = 0.0
    down: Optional[frozenset] = None
    status_down: Optional[Tuple[ProcessId, ...]] = None


@slotted_dataclass(frozen=True)
class InitiateCheckpoint:
    """Condition b1: autonomously start a checkpointing instance."""

    at: SimTime = 0.0
    down: Optional[frozenset] = None
    status_down: Optional[Tuple[ProcessId, ...]] = None


@slotted_dataclass(frozen=True)
class InitiateRollback:
    """Condition b5: a transient error was detected; roll back."""

    at: SimTime = 0.0
    down: Optional[frozenset] = None
    status_down: Optional[Tuple[ProcessId, ...]] = None


@slotted_dataclass(frozen=True)
class AppSend:
    """The application asks to send ``payload`` to ``dst``."""

    dst: ProcessId
    payload: Any = None
    at: SimTime = 0.0


@slotted_dataclass(frozen=True)
class LocalStep:
    """One unit of local application computation."""

    at: SimTime = 0.0


@slotted_dataclass(frozen=True)
class AppOp:
    """A tracked mutation of hosted application state (``repro.app``).

    ``op`` is a plain data tuple the hosted :class:`~repro.core.app.
    Application` interprets via its ``apply`` method.  Routing mutations
    through the engine (rather than poking the app object directly) is what
    makes job state crash-consistent: the mutation lands *between* engine
    events, so every checkpoint snapshot and rollback restore sees it
    atomically, and the trace records exactly which mutations each
    checkpoint covers.
    """

    op: Any
    at: SimTime = 0.0


@slotted_dataclass(frozen=True)
class Fail:
    """Fail-stop crash: volatile protocol state vanishes."""

    at: SimTime = 0.0


@slotted_dataclass(frozen=True)
class Recover:
    """The process restarts after a crash (Section 6, rule 3).

    ``spooled`` carries the envelopes drained from this process's spooler
    group (``None`` when no spoolers are installed); ``spool_decisions`` the
    ``(kind, tree)`` decision pairs the live spooler replicas observed
    (``None`` when unavailable — no group, or every replica down).
    """

    at: SimTime = 0.0
    down: Optional[frozenset] = None
    status_down: Optional[Tuple[ProcessId, ...]] = None
    spooled: Optional[Tuple[Envelope, ...]] = None
    spool_decisions: Optional[Tuple[Any, ...]] = None


@slotted_dataclass(frozen=True)
class Join:
    """The membership plane announces that ``pid`` joined the cluster.

    Delivered to every *existing* engine (the joiner itself receives a
    normal :class:`Start` whose ``peers`` already include it).  ``peers`` is
    the full post-join membership; an empty tuple means "add ``pid`` to what
    you already believe" (used by drivers that have no global view).
    """

    pid: ProcessId
    peers: Tuple[ProcessId, ...] = ()
    at: SimTime = 0.0


@slotted_dataclass(frozen=True)
class Leave:
    """A graceful departure (paper extension; Nakamura-style dynamism).

    Delivered to the departing engine itself — which resolves its open
    checkpoint obligations and hands the rest to ``successor`` via a
    :class:`repro.core.effects.Handoff` effect — and to every remaining
    engine, which drops ``pid`` from its peer set and from every open
    instance round so no 2PC blocks on a departed member.

    ``spooled`` carries ``(src, label)`` summaries of the envelopes drained
    from the departing pid's spooler group (dead letters, salvaged for
    accounting and carried to the successor in the handoff).
    """

    pid: ProcessId
    successor: Optional[ProcessId] = None
    spooled: Tuple[Tuple[ProcessId, Optional[int]], ...] = ()
    at: SimTime = 0.0


@slotted_dataclass(frozen=True)
class ViewChange:
    """A full membership refresh from the plane (epoch-numbered).

    Coarser than :class:`Join`/:class:`Leave`: the engine replaces its peer
    tuple wholesale.  Used by drivers that batch several transitions.
    """

    epoch: int
    pids: Tuple[ProcessId, ...]
    at: SimTime = 0.0


@slotted_dataclass(frozen=True)
class FailureNotice:
    """The failure detector reports that peer ``pid`` crashed."""

    pid: ProcessId
    at: SimTime = 0.0
    down: Optional[frozenset] = None
    status_down: Optional[Tuple[ProcessId, ...]] = None


@slotted_dataclass(frozen=True)
class RecoveryNotice:
    """The failure detector reports that peer ``pid`` is operational again."""

    pid: ProcessId
    at: SimTime = 0.0


Event = Any  # any of the classes above; kept loose for Python 3.9

__all__ = [
    "AppOp",
    "AppSend",
    "Deliver",
    "Event",
    "Fail",
    "FailureNotice",
    "InitiateCheckpoint",
    "InitiateRollback",
    "Join",
    "Leave",
    "LocalStep",
    "Recover",
    "RecoveryNotice",
    "Start",
    "TimerFired",
    "ViewChange",
]
