"""The rollback half of the algorithm: procedures b5-b8 (paper 3.5.2).

Pure mixin over :class:`repro.core.engine.EngineBase`.  The paper gives
these procedures the highest priority; the control messages involved carry
``PRIORITY_ROLLBACK`` so the kernel processes them before same-instant
checkpoint traffic.

Faithfulness deviations (argued in DESIGN.md §5):

* after a ``neg_ack`` in b6 the procedure returns (the paper's pseudocode
  omits the ``return`` that its b2 twin has);
* ``bad_seq`` is computed as the *minimum label among the sends actually
  undone* — exactly what the paper's own comment defines ("the minimum label
  of the messages that have just been undone by the sender") — rather than
  the per-branch closed forms, which miss survivors of aborted-checkpoint
  intervals;
* every ``roll_req`` carries ``undone_upto`` so receivers can install an
  exact discard filter for in-transit undone messages (the paper requires
  the sender to "inform P_j to discard" them but leaves the mechanism open).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro import tracekinds as T
from repro.core import effects as FX
from repro.core import messages as M
from repro.core.trees import RollTreeState
from repro.types import CheckpointRecord, ProcessId, TreeId


class RollProtocolMixin:
    """Procedures b5-b8.  Mixed into ``ProtocolEngine``."""

    # ------------------------------------------------------------------
    # b5 — roll_initiation
    # ------------------------------------------------------------------
    def initiate_rollback(self) -> Optional[TreeId]:
        """A transient error was detected (condition b5): roll back.

        Rolls back to ``newchkpt`` if one exists, else to ``oldchkpt``, and
        starts a global rollback instance.  Returns the tree timestamp, or
        ``None`` if the process is crashed.
        """
        if self.crashed:
            return None
        tree_id = self._new_tree_id()
        self._trace(T.K_INSTANCE_START, tree=tree_id, instance="rollback")
        tree = self.trees.open_roll(tree_id, parent=None)

        target = self.store.newchkpt or self.store.oldchkpt
        self._perform_rollback(tree, target, discard_newchkpt=False)
        self._roll_maybe_complete(tree)
        return tree_id

    # ------------------------------------------------------------------
    # b6 — roll_request_propagation
    # ------------------------------------------------------------------
    def _on_roll_req(self, src: ProcessId, req: M.RollReq) -> None:
        """Handle ("roll_req", t, undo_seq) from potential parent ``src``.

        Three cases, following the paper's membership rule:

        * not a member and a doomed receive exists — become ``src``'s true
          roll-child in T(t) and roll back (the normal b6 path);
        * already a member and a doomed receive exists — answer ``neg_ack``
          (membership is unique) but *still roll back*: several instance
          members may each have undone messages we consumed, and only the
          first one recruits us.  This is why the paper's b6, unlike b2,
          does not return after the negative acknowledgement.  If our
          membership already ended (restart processed — possible only
          through non-FIFO delay of the roll_req), the undo happens under a
          fresh instance rooted here, since T(t)'s two-phase commit can no
          longer synchronise it;
        * no doomed receive — ``neg_ack``, nothing to undo (any still
          in-transit undone message is caught by the discard filter).
        """
        # The requester's undone messages may still be in transit; discard
        # them on arrival whether or not we are a true child.
        self.ledger.install_discard_filter(src, req.undo_seq, req.undone_upto)

        member = self.trees.roll_member(req.tree)
        doomed = self.ledger.has_live_receive_from(src, req.undo_seq)
        is_child = doomed and not member
        self._send_control(src, M.RollAck(tree=req.tree, positive=is_child))
        if not doomed:
            return

        if is_child:
            tree = self.trees.open_roll(req.tree, parent=src)
        else:
            tree = self.trees.roll[req.tree]
            if tree.closed:
                tree = self.trees.open_roll(self._new_tree_id(), parent=None)
                self._trace(T.K_INSTANCE_START, tree=tree.tree, instance="rollback")

        self._rollback_for_request(src, req, tree)
        self._roll_maybe_complete(tree)

    def _undone_notice_for(
        self, requester: ProcessId, label: int
    ) -> Optional[Tuple[TreeId, int, int]]:
        """Close the neg_ack/roll_req race on non-FIFO channels.

        A checkpoint request referencing a message we have already undone is
        rejected, but the requester's tentative checkpoint has consumed that
        doomed message and must be torn down.  The original ``roll_req`` is
        (or was) in flight; on a non-FIFO channel our rejection may overtake
        it and the requester could commit first.  The paper prevents this
        with its control-message atomicity assumption; we achieve the same
        guarantee by piggybacking the rollback notice on the rejection
        itself (idempotent at the receiver).

        Returns the ``(roll tree, undo_seq, undone_upto)`` notice or ``None``
        when the rejection was for another reason.
        """
        notice = self.ledger.undone_send_info(requester, label)
        if notice is None:
            return None
        roll_tree_id, _undo_seq, _undone_upto = notice
        state = self.trees.roll.get(roll_tree_id)
        if state is not None and not state.closed:
            # The requester may join as our true child; gate completion on it.
            state.pending_acks.add(requester)
        return notice

    def _rollback_for_request(self, src: ProcessId, req: M.RollReq, tree: RollTreeState) -> None:
        """b6's branch analysis: pick the restoration target and roll back.

        The paper's test — ``undo_seq > max_ji`` over newchkpt's own interval
        — is equivalent to asking whether *every* doomed receive happened
        after newchkpt was made, under the invariant that older intervals
        are covered by committed checkpoints.  Failure-rule aborts can break
        that invariant, so we evaluate the question directly: find the
        earliest interval holding a live doomed receive and keep newchkpt
        only if it predates all of them.
        """
        doomed_intervals = [
            r.interval
            for r in self.ledger.received
            if not r.undone and r.src == src and r.label >= req.undo_seq
        ]
        earliest = min(doomed_intervals)
        newchkpt = self.store.newchkpt
        if newchkpt is not None and earliest >= newchkpt.seq:
            # All undone receives happened after newchkpt was made: rolling
            # back to newchkpt suffices and the uncommitted checkpoint (and
            # its instances) survives.
            self._perform_rollback(tree, newchkpt, discard_newchkpt=False)
        elif newchkpt is not None:
            # Some undone receive predates newchkpt: the tentative
            # checkpoint captured a doomed state.  Abort every instance
            # sharing it and fall back to oldchkpt.  Queued sends belong
            # to the doomed computation: drop them before the abort's
            # send-resume could flush them into the network.
            self.output_queue.clear()
            self._abort_shared_checkpoint_instances()
            self._perform_rollback(tree, self.store.oldchkpt, discard_newchkpt=True)
        else:
            self._perform_rollback(tree, self.store.oldchkpt, discard_newchkpt=False)

    def _abort_shared_checkpoint_instances(self) -> None:
        """b6's middle branch: abort every instance sharing ``newchkpt``.

        "send ('abort', t') to all its true chkpt-children with respect to
        the chkpt-tree T(t') for all t' in chkpt_commit_set(i)".
        """
        doomed = self.store.newchkpt
        for other in sorted(self.chkpt_commit_set):
            state = self.trees.chkpt.get(other)
            if state is not None:
                was_open_root = state.is_root and not state.closed
                self._forward_decision(state, "abort")
                if was_open_root:
                    self._trace(T.K_INSTANCE_ABORT, tree=other)
            self._remember_decision(other, "abort")
        self.chkpt_commit_set = set()
        self._persist_commit_set()
        if doomed is not None:
            self.store.discard_new()
            self._trace(T.K_CHKPT_ABORT, seq=doomed.seq, tree=None)
        self._resume_send()  # the checkpoint suspension lapses with newchkpt

    # ------------------------------------------------------------------
    # The rollback action shared by b5/b6
    # ------------------------------------------------------------------
    def _perform_rollback(
        self,
        tree: RollTreeState,
        target: Optional[CheckpointRecord],
        discard_newchkpt: bool,
    ) -> None:
        """Restore ``target``, undo the ledger, and propagate roll_reqs.

        ``discard_newchkpt`` is handled by the caller before invoking us (it
        is only a tracing hint here); the parameter documents intent.
        """
        assert target is not None, "a process always has a committed checkpoint"
        self.app.restore(target.state)
        self._emit(FX.Rollback(to_seq=target.seq, tree=tree.tree))
        undone_sends, undone_receives = self.ledger.undo_for_rollback(target.seq)
        self._trace(
            T.K_ROLLBACK,
            to_seq=target.seq,
            tree=tree.tree,
            target="newchkpt" if not target.committed else "oldchkpt",
            undone_sends=len(undone_sends),
            undone_receives=len(undone_receives),
        )
        for record in undone_sends:
            self._trace(
                T.K_UNDO_SEND, msg_id=record.msg_id, dst=record.dst, label=record.label
            )
        for record in undone_receives:
            self._trace(
                T.K_UNDO_RECEIVE, msg_id=record.msg_id, src=record.src, label=record.label
            )
        # Output-queue entries were generated after the restored state; they
        # are part of the undone computation and must never be transmitted.
        self.output_queue.clear()

        bad_seq, potential = self.ledger.undo_summary(undone_sends, fallback=self.ledger.n)
        potential.discard(self.node_id)
        # Gracefully departed receivers cannot roll back; the messages they
        # received from us are settled history (see the membership plane).
        potential -= self.departed_peers
        undone_upto = self.ledger.n
        for record in undone_sends:
            record.undone_by = (tree.tree, bad_seq, undone_upto)
        # Union, not assignment: a member rolling back a second time for the
        # same tree gains additional potential children.
        tree.pending_acks |= potential
        for child in sorted(potential):
            self._send_control(
                child, M.RollReq(tree=tree.tree, undo_seq=bad_seq, undone_upto=undone_upto)
            )

        # Rule 2, applied proactively: a potential roll-child already known
        # to be down will never acknowledge — exclude it and continue (its
        # own rule-3 recovery rollback undoes the same messages).
        for child in sorted(potential):
            if self._believed_down(child):
                tree.drop_child(child)

        # b6 suspends unconditionally; b5 only when a roll-child exists.  We
        # register the instance now and let _roll_maybe_complete resolve the
        # childless-root case immediately (removing it and advancing n_i).
        if not tree.is_root or tree.pending_acks:
            self.roll_restart_set.add(tree.tree)
            self._suspend_comm()

    # ------------------------------------------------------------------
    # Ack and completion collection (b6's await; b7)
    # ------------------------------------------------------------------
    def _on_roll_ack(self, src: ProcessId, ack: M.RollAck) -> None:
        tree = self.trees.roll.get(ack.tree)
        if tree is None or tree.closed:
            return
        tree.record_ack(src, ack.positive)
        self._roll_maybe_complete(tree)

    def _on_roll_complete(self, src: ProcessId, msg: M.RollComplete) -> None:
        tree = self.trees.roll.get(msg.tree)
        if tree is None or tree.closed:
            # A child recruited after our instance already restarted (via a
            # re-issued rollback notice) completes late; release it directly
            # with the decision we already know.
            if self.decisions_seen.get(msg.tree) == "restart":
                self._send_control(src, M.Restart(tree=msg.tree))
            return
        tree.record_complete(src)
        self._roll_maybe_complete(tree)

    def _roll_maybe_complete(self, tree: RollTreeState) -> None:
        """Condition b7 for this node's subtree.

        Non-root: send ``roll_complete`` to the parent and keep waiting for
        ``restart``.  Root (or rule-5 substitute): issue ``restart`` to the
        true children and release this instance locally.
        """
        if tree.closed or not tree.subtree_complete:
            return
        if not (tree.is_root or tree.substitute):
            if tree.responded:
                return
            tree.responded = True
            self._send_control(tree.parent, M.RollComplete(tree=tree.tree))
            return
        # Root — or a rule-5 substitute, which may have already responded to
        # the (now dead) initiator before taking over; it must still issue
        # the restart for its subtree.
        tree.responded = True
        for child in sorted(tree.true_children):
            self._send_control(child, M.Restart(tree=tree.tree))
        self._remember_decision(tree.tree, "restart")
        if tree.is_root:
            self._trace(T.K_INSTANCE_COMMIT, tree=tree.tree)
        tree.closed = True
        self._release_roll_instance(tree.tree)

    # ------------------------------------------------------------------
    # b8 — roll_restart
    # ------------------------------------------------------------------
    def _on_restart(self, src: ProcessId, msg: M.Restart) -> None:
        self._remember_decision(msg.tree, "restart")
        tree = self.trees.roll.get(msg.tree)
        if tree is None or tree.closed:
            return
        for child in sorted(tree.true_children):
            self._send_control(child, M.Restart(tree=msg.tree))
        tree.closed = True
        self._release_roll_instance(msg.tree)

    def _release_roll_instance(self, tree_id: TreeId) -> None:
        """Remove ``t`` from roll_restart_set; on empty, advance ``n_i`` and
        resume sending and receiving normal messages (b7/b8 tail)."""
        self.roll_restart_set.discard(tree_id)
        if not self.roll_restart_set:
            new_interval = self.ledger.advance()
            self._trace(T.K_RESTART, new_interval=new_interval)
            self._resume_comm()
