"""The sans-IO Leu-Bhargava protocol engine.

:class:`ProtocolEngine` is a pure state machine: it consumes the typed input
events of :mod:`repro.core.events` through a single entrypoint —
``handle(event) -> list[Effect]`` — and describes every externally visible
action as a typed effect from :mod:`repro.core.effects`.  It holds **zero**
references to ``Node``, ``Scheduler``, ``Trace`` or stable storage; the same
engine instance runs unchanged under the discrete-event simulation, the live
asyncio runtime, and the :mod:`repro.mc` interleaving explorer.

Layering:

* this module — engine state, the event loop, the effect plumbing, the
  normal-message plane, and the pure checkpoint stores;
* :mod:`repro.core.checkpoint_protocol` — procedures b1-b4 (mixin);
* :mod:`repro.core.rollback_protocol` — procedures b5-b8 (mixin);
* :mod:`repro.core.recovery` — the Section 6 failure rules (mixin);
* :mod:`repro.core.process` — the kernel adapter that interprets effects.

Effects are *eagerly sinked*: when an adapter installs ``engine._sink``, each
effect is applied the moment it is emitted, which preserves the exact
interleaving of traces, sends and synchronous redeliveries that the
pre-refactor mixins produced (a spool redelivery re-enters ``handle``
mid-event).  ``handle`` additionally collects the effects of the outermost
dispatch and returns them, which is what sink-less drivers (tests, the model
checker) consume.

Suspension model (paper 3.5.2 comments):

* a pending ``newchkpt`` suspends *sending* normal messages only — receives
  and local computation continue;
* membership in an unfinished rollback instance suspends *sending and
  receiving*; incoming normal messages are discarded;
* application sends issued while sending is suspended are queued in the
  output queue and flushed on resume;
* a rollback clears the output queue (queued messages belong to the undone
  computation).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.compat import slotted_dataclass
from repro.core import effects as FX
from repro.core import events as EV
from repro.core import messages as M
from repro.core.app import Application, CounterApp
from repro.core.checkpoint_protocol import ChkptProtocolMixin
from repro.core.labels import LabelLedger
from repro.core.membership_protocol import MembershipMixin
from repro.core.recovery import RecoveryMixin
from repro.core.rollback_protocol import RollProtocolMixin
from repro.core.trees import TreeRegistry
from repro.errors import ProtocolError, StableStorageError
from repro.net.message import Envelope, control, normal
from repro.priorities import PRIORITY_NORMAL, PRIORITY_TIMER
from repro.tracekinds import (
    K_CTRL_RECEIVE,
    K_CTRL_SEND,
    K_DISCARD,
    K_RECEIVE,
    K_RESUME_ALL,
    K_RESUME_SEND,
    K_SEND,
    K_SUSPEND_ALL,
    K_SUSPEND_SEND,
)
from repro.types import CheckpointRecord, MessageId, ProcessId, Seq, SimTime, TreeId


@slotted_dataclass(frozen=True)
class ProtocolConfig:
    """Tunables for a :class:`ProtocolEngine` / ``CheckpointProcess``.

    ``checkpoint_interval`` — period of the autonomous checkpoint timer
    (condition b1); ``None`` disables the timer (tests and scripted scenarios
    call ``initiate_checkpoint`` directly).

    ``failure_resilience`` — enable the Section 6 exception handlers (rules
    1-6).  Off by default so the base algorithm can be studied in isolation.

    ``ack_timeout`` / ``decision_timeout`` — how long a resilient process
    waits on a peer before the failure handlers treat it as unresponsive;
    only used when ``failure_resilience`` is on and complements the failure
    detector (which is the primary trigger).

    ``inquiry_retry_interval`` — how often a blocked process re-broadcasts a
    rule-6 decision inquiry while no answer arrives.

    The config is frozen and validated at construction: negative timeouts
    make the protocol silently mis-schedule, so they are rejected here rather
    than surfacing as a confusing kernel error mid-run.
    """

    checkpoint_interval: Optional[SimTime] = None
    failure_resilience: bool = False
    ack_timeout: SimTime = 30.0
    decision_timeout: SimTime = 30.0
    inquiry_retry_interval: SimTime = 10.0

    def __post_init__(self) -> None:
        if self.checkpoint_interval is not None and self.checkpoint_interval < 0:
            raise ValueError(f"checkpoint_interval must be >= 0, got {self.checkpoint_interval}")
        for name in ("ack_timeout", "decision_timeout", "inquiry_retry_interval"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")


class CheckpointSlots:
    """Pure in-engine mirror of the two-slot ``oldchkpt``/``newchkpt`` store.

    Mutations emit the matching storage effect through the owning engine, so
    an adapter can replay them onto a real
    :class:`repro.stable.checkpoint.CheckpointStore` while the engine reasons
    over plain records.
    """

    def __init__(self, engine: "EngineBase") -> None:
        self._engine = engine
        self.oldchkpt: Optional[CheckpointRecord] = None
        self.newchkpt: Optional[CheckpointRecord] = None

    @property
    def has_new(self) -> bool:
        return self.newchkpt is not None

    def initialize(
        self, state: Any, made_at: SimTime = 0.0, seq: Seq = 1, meta: Optional[Dict[str, Any]] = None
    ) -> CheckpointRecord:
        record = CheckpointRecord(
            seq=seq, state=state, committed=True, made_at=made_at, meta=dict(meta or {})
        )
        self.oldchkpt = record
        self.newchkpt = None
        self._engine._emit(
            FX.SaveCheckpoint(
                kind="initial", seq=seq, state=state, made_at=made_at,
                meta=record.meta, store=FX.SLOT,
            )
        )
        return record

    def take_new(self, seq: Seq, state: Any, made_at: SimTime = 0.0, **meta: Any) -> CheckpointRecord:
        if self.has_new:
            raise StableStorageError("newchkpt already exists; commit or discard it first")
        record = CheckpointRecord(seq=seq, state=state, committed=False, made_at=made_at, meta=meta)
        self.newchkpt = record
        self._engine._emit(
            FX.SaveCheckpoint(
                kind="new", seq=seq, state=state, made_at=made_at, meta=meta, store=FX.SLOT
            )
        )
        return record

    def commit_new(self) -> CheckpointRecord:
        pending = self.newchkpt
        if pending is None:
            raise StableStorageError("no newchkpt to commit")
        pending.committed = True
        self.oldchkpt = pending
        self.newchkpt = None
        self._engine._emit(FX.CommitThrough(seq=pending.seq, store=FX.SLOT))
        return pending

    def discard_new(self) -> None:
        self.newchkpt = None
        self._engine._emit(FX.DiscardCheckpoints(from_seq=None, store=FX.SLOT))


class CheckpointStack:
    """Pure mirror of the Section 3.5.3 pending-checkpoint stack."""

    def __init__(self, engine: "EngineBase") -> None:
        self._engine = engine
        self.oldchkpt: Optional[CheckpointRecord] = None
        self._pending: List[CheckpointRecord] = []

    @property
    def pending(self) -> List[CheckpointRecord]:
        return list(self._pending)

    @property
    def pending_seqs(self) -> List[Seq]:
        return [r.seq for r in self._pending]

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def newest(self) -> Optional[CheckpointRecord]:
        return self._pending[-1] if self._pending else None

    def find(self, seq: Seq) -> Optional[CheckpointRecord]:
        for record in self._pending:
            if record.seq == seq:
                return record
        return None

    def initialize(
        self, state: Any, made_at: SimTime = 0.0, seq: Seq = 1, meta: Optional[Dict[str, Any]] = None
    ) -> CheckpointRecord:
        record = CheckpointRecord(
            seq=seq, state=state, committed=True, made_at=made_at, meta=dict(meta or {})
        )
        self.oldchkpt = record
        self._pending = []
        self._engine._emit(
            FX.SaveCheckpoint(
                kind="initial", seq=seq, state=state, made_at=made_at,
                meta=record.meta, store=FX.STACK,
            )
        )
        return record

    def push(self, seq: Seq, state: Any, made_at: SimTime = 0.0, **meta: Any) -> CheckpointRecord:
        if self._pending and seq <= self._pending[-1].seq:
            raise StableStorageError(
                f"checkpoint seq {seq} not newer than pending seq {self._pending[-1].seq}"
            )
        record = CheckpointRecord(seq=seq, state=state, committed=False, made_at=made_at, meta=meta)
        self._pending.append(record)
        self._engine._emit(
            FX.SaveCheckpoint(
                kind="push", seq=seq, state=state, made_at=made_at, meta=meta, store=FX.STACK
            )
        )
        return record

    def commit_through(self, seq: Seq) -> CheckpointRecord:
        target = self.find(seq)
        if target is None:
            raise StableStorageError(f"no pending checkpoint with seq {seq}")
        target.committed = True
        self.oldchkpt = target
        self._pending = [r for r in self._pending if r.seq > seq]
        self._engine._emit(FX.CommitThrough(seq=seq, store=FX.STACK))
        return target

    def discard_from(self, seq: Seq) -> List[CheckpointRecord]:
        dropped = [r for r in self._pending if r.seq >= seq]
        self._pending = [r for r in self._pending if r.seq < seq]
        self._engine._emit(FX.DiscardCheckpoints(from_seq=seq, store=FX.STACK))
        return dropped


class EngineBase:
    """Engine state, event dispatch and effect plumbing shared by variants."""

    def __init__(
        self,
        pid: ProcessId,
        config: Optional[ProtocolConfig] = None,
        app: Optional[Application] = None,
    ) -> None:
        self.node_id = pid
        self.config = config or ProtocolConfig()
        self.app: Application = app or CounterApp(pid)
        self.store = CheckpointSlots(self)
        self.ledger = LabelLedger(pid)
        self.trees = TreeRegistry()
        self.chkpt_commit_set: set = set()
        self.roll_restart_set: set = set()
        self.output_queue: List[Tuple[ProcessId, Any]] = []
        self.send_suspended = False   # pending newchkpt blocks normal sends
        self.comm_suspended = False   # unfinished rollback blocks send+receive
        # Decisions this process has observed, for Section 6 inquiries.
        self.decisions_seen: Dict[TreeId, str] = {}
        self._recovering = False
        self._open_inquiries: Dict[TreeId, str] = {}
        self._pending_spool: List[Envelope] = []
        # Analysis-only archive of every committed checkpoint, in order.
        self.committed_history: List[Any] = []
        self.crashed = False
        # Graceful-departure state (repro.core.membership_protocol): set
        # once by a Leave event addressed to this engine; ``adopted`` maps
        # departed pids to the HandoffMsg this engine accepted for them.
        self.departed = False
        self.adopted: Dict[ProcessId, Any] = {}
        # Peers that departed gracefully: excluded from instance
        # recruitment (their obligations travelled in the handoff).
        self.departed_peers: Set[ProcessId] = set()
        self.peers: Tuple[ProcessId, ...] = ()
        # Host-settable quiesce switch: while False, the checkpoint timer
        # keeps re-arming but initiates nothing, so a host can drain every
        # in-flight 2PC round before cutting a run (no tree is ever cut
        # between the root's commit and a cohort's).
        self.autonomous_checkpoints = True
        #: Result of the last Initiate* event (the new tree's id or None).
        self.last_result: Optional[TreeId] = None

        self._now: SimTime = 0.0
        # Environment snapshots carried by the last event (see events.py).
        self._down: Optional[frozenset] = None
        self._status_down: Optional[Tuple[ProcessId, ...]] = None
        self._spool_decisions: Optional[Tuple[Any, ...]] = None
        self._timer_actions: Dict[str, Callable[[], None]] = {}
        self._counters: Dict[str, int] = {}
        # Mirrors of the PersistMeta effects, so recovery never reads storage.
        self._persisted_commit_set: List[Any] = []
        self._persisted_decisions: List[Any] = []
        # Effect plumbing: eager per-effect sink + per-handle collection list.
        self._sink: Optional[Callable[[Any], None]] = None
        self._effects: Optional[List[Any]] = None

    # ------------------------------------------------------------------
    # The sans-IO entrypoint
    # ------------------------------------------------------------------
    def handle(self, event: EV.Event) -> List[FX.Effect]:
        """Apply one input event; returns the effects it produced.

        Reentrant: a ``Redeliver`` effect applied by an eager sink delivers
        an envelope synchronously, which re-enters ``handle`` mid-event; the
        collection list is saved and restored so each call returns exactly
        its own effects.
        """
        previous = self._effects
        collected: List[FX.Effect] = []
        self._effects = collected
        try:
            self._dispatch_event(event)
        finally:
            self._effects = previous
        return collected

    def _dispatch_event(self, event: EV.Event) -> None:
        self._now = getattr(event, "at", self._now)
        self._down = getattr(event, "down", None)
        self._status_down = getattr(event, "status_down", None)
        self.last_result = None
        # Exact-class table lookup replaces the historical isinstance chain:
        # one dict probe instead of up-to-twelve type checks per event.  A
        # subclass (not used by the repo itself, but allowed) falls back to
        # the isinstance walk once and is then cached in the table.
        name = _EVENT_DISPATCH.get(event.__class__)
        if name is None:
            name = self._dispatch_event_slow(event)
        getattr(self, name)(event)

    def _dispatch_event_slow(self, event: EV.Event) -> str:
        """Subclass fallback: resolve via isinstance (chain order) and cache."""
        for cls, name in _EVENT_DISPATCH.items():
            if isinstance(event, cls):
                _EVENT_DISPATCH[event.__class__] = name
                return name
        raise ProtocolError(f"unknown engine event {event!r}")

    # Per-event adapters bound through _EVENT_DISPATCH (uniform signature).
    def _ev_deliver(self, event: EV.Deliver) -> None:
        self.on_envelope(event.envelope)

    def _ev_timer_fired(self, event: EV.TimerFired) -> None:
        self._on_timer_fired(event.name)

    def _ev_app_send(self, event: EV.AppSend) -> None:
        self.send_app_message(event.dst, event.payload)

    def _ev_local_step(self, event: EV.LocalStep) -> None:
        self.local_step()

    def _ev_app_op(self, event: EV.AppOp) -> None:
        self.apply_app_op(event.op)

    def _ev_initiate_checkpoint(self, event: EV.InitiateCheckpoint) -> None:
        self.last_result = self.initiate_checkpoint()

    def _ev_initiate_rollback(self, event: EV.InitiateRollback) -> None:
        self.last_result = self.initiate_rollback()

    def _ev_start(self, event: EV.Start) -> None:
        self.peers = tuple(event.peers)
        self.on_start()

    def _ev_fail(self, event: EV.Fail) -> None:
        self.crashed = True
        self._timer_actions.clear()
        self.on_crash()

    def _ev_recover(self, event: EV.Recover) -> None:
        self.crashed = False
        self.on_recover(event)

    def _ev_failure_notice(self, event: EV.FailureNotice) -> None:
        self.on_failure_notice(event.pid)

    def _ev_recovery_notice(self, event: EV.RecoveryNotice) -> None:
        self.on_recovery_notice(event.pid)

    def _emit(self, effect: FX.Effect) -> None:
        if self._effects is not None:
            self._effects.append(effect)
        if self._sink is not None:
            self._sink(effect)

    # ------------------------------------------------------------------
    # Kernel-facing vocabulary (all pure: every action is an effect)
    # ------------------------------------------------------------------
    @property
    def now(self) -> SimTime:
        """Time of the event currently being handled."""
        return self._now

    def send(self, envelope: Envelope) -> None:
        self._emit(FX.Send(envelope=envelope))

    def _trace(self, kind: str, **fields: Any) -> None:
        self._emit(FX.EmitTrace(kind=kind, fields=fields))

    def _set_timer(
        self,
        name: str,
        delay: SimTime,
        action: Callable[[], None],
        priority: int = PRIORITY_TIMER,
        jitter: Optional[Tuple[str, float, float]] = None,
    ) -> None:
        self._timer_actions[name] = action
        self._emit(FX.SetTimer(name=name, delay=delay, priority=priority, jitter=jitter))

    def cancel_timer(self, name: str) -> None:
        self._timer_actions.pop(name, None)
        self._emit(FX.CancelTimer(name=name))

    def _on_timer_fired(self, name: str) -> None:
        action = self._timer_actions.pop(name, None)
        if action is not None and not self.crashed:
            action()

    def _next_id(self, key: str) -> int:
        value = self._counters.get(key, 0)
        self._counters[key] = value + 1
        return value

    def _new_tree_id(self) -> TreeId:
        return TreeId(self.node_id, self._next_id("tree"))

    def _new_msg_id(self) -> MessageId:
        return MessageId(self.node_id, self._next_id("msg"))

    def _believed_down(self, pid: ProcessId) -> bool:
        """Is ``pid`` believed failed by the status monitor?

        Only meaningful with failure resilience on; without it the base
        algorithm assumes no failures and never consults the detector.  The
        detector's view rides on the event being handled (``down``).
        """
        if not self.config.failure_resilience:
            return False
        return self._down is not None and pid in self._down

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        """Install the initial committed checkpoint and arm the b1 timer.

        The birth checkpoint has sequence number 1 and the interval counter
        starts there too, so the first interval's messages carry label 1 and
        label 0 stays free as the "nothing received" sentinel (paper Fig. 2).
        """
        self.ledger.n = 1
        self.store.initialize(
            self.app.snapshot(), made_at=self.now, meta=self._ledger_manifest()
        )
        self.committed_history = [self.store.oldchkpt]
        self._reset_checkpoint_timer()

    def _ledger_manifest(self) -> Dict[str, Any]:
        """Which live sends/receives the state being checkpointed reflects.

        Stored in each checkpoint's ``meta`` purely for the analysis layer:
        the C1/C2 checkers and the minimality theorems are verified against
        these manifests (see :mod:`repro.analysis.consistency`).  The
        protocol itself never reads them.
        """
        return {
            "recv": sorted(
                (r.src, r.msg_id.send_index) for r in self.ledger.live_receives()
            ),
            "sent": sorted(
                (r.dst, r.msg_id.send_index) for r in self.ledger.live_sends()
            ),
        }

    def _reset_checkpoint_timer(self) -> None:
        """"After P_i makes a new checkpoint, its checkpoint timer is reset."""
        if self.config.checkpoint_interval is None:
            return
        self._set_timer(
            "checkpoint",
            self.config.checkpoint_interval,
            self._checkpoint_timer_fired,
            jitter=("ckpt-timer", 0.0, 0.1),
        )

    def _checkpoint_timer_fired(self) -> None:
        if self.autonomous_checkpoints:
            self.initiate_checkpoint()
        self._reset_checkpoint_timer()

    # ------------------------------------------------------------------
    # Suspension bookkeeping
    # ------------------------------------------------------------------
    @property
    def can_send_normal(self) -> bool:
        return not (self.crashed or self.send_suspended or self.comm_suspended)

    def _suspend_send(self) -> None:
        if not self.send_suspended:
            self.send_suspended = True
            self._trace(K_SUSPEND_SEND)

    def _resume_send(self) -> None:
        if self.send_suspended:
            self.send_suspended = False
            self._trace(K_RESUME_SEND)
            self._flush_output_queue()

    def _suspend_comm(self) -> None:
        if not self.comm_suspended:
            self.comm_suspended = True
            self._trace(K_SUSPEND_ALL)

    def _resume_comm(self) -> None:
        if self.comm_suspended:
            self.comm_suspended = False
            self._trace(K_RESUME_ALL)
            self._flush_output_queue()
            self._drain_pending_spool()

    def _flush_output_queue(self) -> None:
        if not self.can_send_normal:
            return
        queued, self.output_queue = self.output_queue, []
        for dst, payload in queued:
            self._transmit_normal(dst, payload)

    # ------------------------------------------------------------------
    # Normal-message plane (workload-facing API)
    # ------------------------------------------------------------------
    def send_app_message(self, dst: ProcessId, payload: Any) -> None:
        """Application-level send; queued if sending is currently suspended."""
        if self.crashed:
            return
        if self.can_send_normal:
            self._transmit_normal(dst, payload)
        else:
            self.output_queue.append((dst, payload))

    def local_step(self) -> None:
        """One unit of local application computation (never suspended)."""
        if not self.crashed:
            self.app.local_step()

    def apply_app_op(self, op: Any) -> None:
        """Apply one tracked application mutation (see :class:`EV.AppOp`).

        The hosted application interprets ``op`` and returns the trace
        records describing what changed; emitting them through the engine's
        trace effect ties every mutation to this process's event timeline,
        which is what the job-outcome audit reconstructs against checkpoints
        and rollbacks.  Dropped silently while crashed (the driver retries),
        rejected loudly when the hosted app has no tracked-mutation support.
        """
        if self.crashed:
            return
        apply = getattr(self.app, "apply", None)
        if apply is None:
            raise ProtocolError(
                f"application {type(self.app).__name__!r} on P{self.node_id} "
                "does not support tracked mutations (no apply method)"
            )
        for kind, fields in apply(op):
            self._trace(kind, **fields)

    def _transmit_normal(self, dst: ProcessId, payload: Any) -> None:
        msg_id = self._new_msg_id()
        label = self.ledger.record_send(msg_id, dst)
        body = M.NormalBody(
            payload=payload,
            markers=self._current_markers(),
            incarnation=self._current_incarnation(),
        )
        self._trace(K_SEND, msg_id=msg_id, dst=dst, label=label, payload=payload)
        self.send(normal(self.node_id, dst, msg_id, label, body))

    def _current_markers(self) -> tuple:
        """Markers piggybacked on normal sends (empty in the base algorithm;
        the Section 3.5.3 extension overrides this)."""
        return ()

    def _current_incarnation(self) -> int:
        """Sender incarnation stamp (always 0 here; Tamir-Séquin overrides)."""
        return 0

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def on_envelope(self, envelope: Envelope) -> None:
        if self.crashed:
            return
        if envelope.is_normal:
            self._on_normal(envelope)
        else:
            self._dispatch_control(envelope.src, envelope.body)

    def _on_normal(self, envelope: Envelope) -> None:
        src, label, msg_id = envelope.src, envelope.label, envelope.msg_id
        if self.comm_suspended:
            # "The suspend statement causes all subsequent incoming messages
            # to be discarded."
            self._trace(K_DISCARD, msg_id=msg_id, src=src, label=label, reason="roll_suspended")
            return
        if self.ledger.should_discard(src, label):
            # The sender undid this message before we ever consumed it.
            self._trace(K_DISCARD, msg_id=msg_id, src=src, label=label, reason="undone_in_transit")
            return
        body: M.NormalBody = envelope.body
        self._before_consume_normal(src, body)
        self.ledger.record_receive(msg_id, src, label)
        self._trace(K_RECEIVE, msg_id=msg_id, src=src, label=label)
        self.app.handle_message(src, body.payload)

    def _before_consume_normal(self, src: ProcessId, body: M.NormalBody) -> None:
        """Extension hook: act on piggybacked markers before consuming."""

    def _dispatch_control(self, src: ProcessId, body: Any) -> None:
        self._trace(
            K_CTRL_RECEIVE, src=src, msg_type=body.kind, tree=getattr(body, "tree", None)
        )
        name = _CONTROL_DISPATCH.get(body.__class__)
        if name is None:
            name = self._dispatch_control_slow(body)
            if name is None:
                return  # unknown control bodies are ignored, as before
        getattr(self, name)(src, body)

    def _dispatch_control_slow(self, body: Any) -> Optional[str]:
        """Subclass fallback: resolve via isinstance (chain order) and cache."""
        for cls, name in _CONTROL_DISPATCH.items():
            if isinstance(body, cls):
                _CONTROL_DISPATCH[body.__class__] = name
                return name
        return None

    def _send_control(self, dst: ProcessId, body: Any) -> None:
        fields = {"dst": dst, "msg_type": body.kind, "tree": getattr(body, "tree", None)}
        if hasattr(body, "positive"):
            fields["positive"] = body.positive
        self._trace(K_CTRL_SEND, **fields)
        # Decisions are also observed by spoolers so restarting processes can
        # learn them (Section 6, rule 3).
        if isinstance(body, (M.Commit, M.Abort, M.Restart)):
            self._emit(FX.ObserveDecision(kind=body.kind, tree=body.tree))
        self.send(control(self.node_id, dst, body))

    # ------------------------------------------------------------------
    # Shared protocol helpers
    # ------------------------------------------------------------------
    def _remember_decision(self, tree_id: Optional[TreeId], decision: str) -> None:
        """Record an observed instance decision for Section 6 inquiries.

        With failure resilience on, the record is also persisted: a decision
        a process applied to its stable checkpoints must survive its own
        crash, or a recovering peer's inquiry could go unanswered forever
        while the decided state lives on.
        """
        if tree_id is None or tree_id in self.decisions_seen:
            return
        self.decisions_seen[tree_id] = decision
        if self.config.failure_resilience:
            value = [
                [t.initiator, t.initiation_seq, d]
                for t, d in self.decisions_seen.items()
            ]
            self._persisted_decisions = value
            self._emit(FX.PersistMeta(key="decisions", value=value))

    def _load_decisions(self) -> Dict[TreeId, str]:
        return {TreeId(i, s): d for i, s, d in self._persisted_decisions}

    def _persist_commit_set(self) -> None:
        """Keep chkpt_commit_set recoverable: rule 3 needs it after a crash."""
        value = sorted((t.initiator, t.initiation_seq) for t in self.chkpt_commit_set)
        self._persisted_commit_set = value
        self._emit(FX.PersistMeta(key="commit_set", value=value))

    def _load_commit_set(self) -> set:
        return {TreeId(i, s) for i, s in self._persisted_commit_set}

    # Overridden by the protocol mixins; declared so the base class is
    # complete for the event dispatcher.
    def initiate_checkpoint(self) -> Optional[TreeId]:  # pragma: no cover
        raise NotImplementedError

    def initiate_rollback(self) -> Optional[TreeId]:  # pragma: no cover
        raise NotImplementedError

    def on_crash(self) -> None:  # pragma: no cover
        raise NotImplementedError

    def on_recover(self, event: EV.Recover) -> None:  # pragma: no cover
        raise NotImplementedError

    def on_failure_notice(self, pid: ProcessId) -> None:  # pragma: no cover
        raise NotImplementedError

    def on_recovery_notice(self, pid: ProcessId) -> None:  # pragma: no cover
        raise NotImplementedError

    def _drain_pending_spool(self) -> None:  # pragma: no cover
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "crashed" if self.crashed else "up"
        return f"<{type(self).__name__} P{self.node_id} {state} n={self.ledger.n}>"


#: Exact-class → handler-name tables for the two dispatch hot paths.  Names
#: (not bound methods) so the protocol handlers, which live on the mixins
#: rather than :class:`EngineBase`, resolve through the instance at call
#: time.  Insertion order mirrors the historical isinstance chains — the
#: subclass fallback walks it in that order before caching.
_EVENT_DISPATCH: Dict[type, str] = {
    EV.Deliver: "_ev_deliver",
    EV.TimerFired: "_ev_timer_fired",
    EV.AppSend: "_ev_app_send",
    EV.LocalStep: "_ev_local_step",
    EV.AppOp: "_ev_app_op",
    EV.InitiateCheckpoint: "_ev_initiate_checkpoint",
    EV.InitiateRollback: "_ev_initiate_rollback",
    EV.Start: "_ev_start",
    EV.Fail: "_ev_fail",
    EV.Recover: "_ev_recover",
    EV.FailureNotice: "_ev_failure_notice",
    EV.RecoveryNotice: "_ev_recovery_notice",
    EV.Join: "_ev_join",
    EV.Leave: "_ev_leave",
    EV.ViewChange: "_ev_view_change",
}

_CONTROL_DISPATCH: Dict[type, str] = {
    M.ChkptReq: "_on_chkpt_req",
    M.ChkptAck: "_on_chkpt_ack",
    M.ReadyToCommit: "_on_ready_to_commit",
    M.Commit: "_on_commit",
    M.Abort: "_on_abort",
    M.RollReq: "_on_roll_req",
    M.RollAck: "_on_roll_ack",
    M.RollComplete: "_on_roll_complete",
    M.Restart: "_on_restart",
    M.DecisionInquiry: "_on_decision_inquiry",
    M.DecisionReply: "_on_decision_reply",
    M.HandoffMsg: "_on_handoff",
}


#: Rule-1 proactive notices are scheduled (not called inline) so the current
#: procedure finishes first; the historical scheduler default they used.
RULE1_PRIORITY = PRIORITY_NORMAL


class ProtocolEngine(
    ChkptProtocolMixin, RollProtocolMixin, RecoveryMixin, MembershipMixin, EngineBase
):
    """The full Leu-Bhargava daemon as a pure state machine."""


__all__ = [
    "CheckpointSlots",
    "CheckpointStack",
    "EngineBase",
    "ProtocolConfig",
    "ProtocolEngine",
    "RULE1_PRIORITY",
]
