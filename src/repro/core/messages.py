"""Control messages of the Leu-Bhargava algorithm (paper Section 3.5).

Each control message is a frozen dataclass stamped with the timestamp ``t``
of the tree it belongs to.  The ``priority`` class attribute maps the paper's
procedure priorities onto the kernel's same-instant ordering: rollback
messages (b5/b6 inputs) are processed before checkpoint messages, which are
processed before normal traffic — "procedures roll_initiation() and
roll_request_propagation() have the highest priority".

Normal messages are wrapped in :class:`NormalBody` so the Section 3.5.3
extension can piggyback checkpoint markers ("marker(t')") on them.
"""

from __future__ import annotations

from repro.compat import slotted_dataclass
from typing import Any, Optional, Tuple

from repro.priorities import PRIORITY_CHECKPOINT, PRIORITY_NORMAL, PRIORITY_ROLLBACK
from repro.types import Label, Seq, TreeId


@slotted_dataclass(frozen=True)
class NormalBody:
    """Payload wrapper for normal messages.

    ``markers`` is empty in the base algorithm; under the extension it holds
    the timestamps of the sender's uncommitted checkpointing instances, and
    ``marker_seq`` the sequence number of the sender's newest uncommitted
    checkpoint when the message was sent (the receiver uses it only for
    tracing; the protocol logic needs just the timestamps).
    """

    payload: Any = None
    markers: Tuple[TreeId, ...] = ()
    marker_seq: Optional[Seq] = None
    # Sender's incarnation at send time.  Unused (always 0) by the
    # Leu-Bhargava algorithm, whose labels carry all needed ordering; the
    # Tamir-Séquin baseline bumps it on every global rollback so receivers
    # can drop cross-rollback in-transit messages.
    incarnation: int = 0

    priority = PRIORITY_NORMAL


@slotted_dataclass(frozen=True)
class ChkptReq:
    """("chkpt_req", t, max_ij) — ask the receiver to checkpoint (b2 input)."""

    tree: TreeId
    max_label: Label

    priority = PRIORITY_CHECKPOINT
    kind = "chkpt_req"


@slotted_dataclass(frozen=True)
class ChkptAck:
    """("pos_ack"/"neg_ack", t) in reply to a ChkptReq.

    ``undone_notice`` rides along on a negative ack when the rejection is
    due to the undone-message clause: it carries ``(roll tree, undo_seq,
    undone_upto)`` of the rollback that undid the referenced message, so the
    requester learns about its doomed tentative checkpoint *atomically* with
    the rejection.  (A separately-sent roll_req could overtake or trail the
    ack on a non-FIFO channel and lose the race against the instance's
    commit; the paper's control-message atomicity assumption provides the
    equivalent ordering guarantee.)
    """

    tree: TreeId
    positive: bool
    undone_notice: Optional[Tuple["TreeId", Label, Label]] = None

    priority = PRIORITY_CHECKPOINT
    kind = "chkpt_ack"


@slotted_dataclass(frozen=True)
class ReadyToCommit:
    """("ready_to_commit", t) — subtree checkpointed, awaiting decision (b3)."""

    tree: TreeId

    priority = PRIORITY_CHECKPOINT
    kind = "ready_to_commit"


@slotted_dataclass(frozen=True)
class Commit:
    """("commit", t) — root's positive decision, propagated down (b4 case 1)."""

    tree: TreeId

    priority = PRIORITY_CHECKPOINT
    kind = "commit"


@slotted_dataclass(frozen=True)
class Abort:
    """("abort", t) — negative decision, propagated down (b4 case 2)."""

    tree: TreeId

    priority = PRIORITY_CHECKPOINT
    kind = "abort"


@slotted_dataclass(frozen=True)
class RollReq:
    """("roll_req", t, undo_seq) — ask the receiver to roll back (b6 input).

    ``undo_seq`` is the minimum label of the messages the sender has just
    undone.  ``undone_upto`` is the sender's interval counter at rollback
    time: labels in ``[undo_seq, undone_upto]`` from this sender are the
    undone messages, and the receiver must discard any of them still in
    transit (paper: "P_i must also inform P_j to discard all subsequent
    normal messages that are sent before P_i rolls back").
    """

    tree: TreeId
    undo_seq: Label
    undone_upto: Label

    priority = PRIORITY_ROLLBACK
    kind = "roll_req"


@slotted_dataclass(frozen=True)
class RollAck:
    """("pos_ack"/"neg_ack", t) in reply to a RollReq."""

    tree: TreeId
    positive: bool

    priority = PRIORITY_ROLLBACK
    kind = "roll_ack"


@slotted_dataclass(frozen=True)
class RollComplete:
    """("roll_complete", t) — subtree finished rolling back (b7 input)."""

    tree: TreeId

    priority = PRIORITY_ROLLBACK
    kind = "roll_complete"


@slotted_dataclass(frozen=True)
class Restart:
    """("restart", t) — root's decision to resume, propagated down (b8)."""

    tree: TreeId

    priority = PRIORITY_ROLLBACK
    kind = "restart"


# ----------------------------------------------------------------------
# Section 6 — resiliency control messages
# ----------------------------------------------------------------------

@slotted_dataclass(frozen=True)
class DecisionInquiry:
    """"Has anyone seen a decision for tree ``t``?" (rules 3 and 6).

    ``decision_kind`` is ``"checkpoint"`` (looking for commit/abort) or
    ``"rollback"`` (looking for restart).
    """

    tree: TreeId
    decision_kind: str

    priority = PRIORITY_CHECKPOINT
    kind = "decision_inquiry"


@slotted_dataclass(frozen=True)
class DecisionReply:
    """Reply to a :class:`DecisionInquiry`.

    ``decision`` is ``"commit"``, ``"abort"``, ``"restart"`` or ``None`` when
    the replier has seen no decision for the tree.
    """

    tree: TreeId
    decision_kind: str
    decision: Optional[str]

    priority = PRIORITY_CHECKPOINT
    kind = "decision_reply"


# ----------------------------------------------------------------------
# Dynamic membership — graceful-departure handoff
# ----------------------------------------------------------------------

@slotted_dataclass(frozen=True)
class HandoffMsg:
    """A departing process hands its checkpoint obligations to a successor.

    Carries the departed pid's commit-set membership (trees its uncommitted
    checkpoint belonged to), its decision log (so the successor can answer
    :class:`DecisionInquiry` on its behalf), the seq of its aborted
    uncommitted checkpoint, and ``(src, label)`` summaries of the dead
    letters drained from its spooler group.
    """

    source: int
    commit_set: Tuple[TreeId, ...] = ()
    decisions: Tuple[Tuple[TreeId, str], ...] = ()
    uncommitted_seq: Optional[Seq] = None
    spooled: Tuple[Tuple[int, Optional[int]], ...] = ()

    priority = PRIORITY_CHECKPOINT
    kind = "handoff"


CONTROL_KINDS = (
    ChkptReq,
    ChkptAck,
    ReadyToCommit,
    Commit,
    Abort,
    RollReq,
    RollAck,
    RollComplete,
    Restart,
    DecisionInquiry,
    DecisionReply,
    HandoffMsg,
)
