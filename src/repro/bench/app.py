"""E-APP — checkpoint-as-a-service: job workload vs. protocol overhead.

The question this experiment answers: when real application jobs ride the
checkpoint protocol, what does a crash actually *cost* — and what does
checkpointing actually *save*?

Sweep (discrete-event simulator — deterministic, honest on 1 CPU):
checkpoint interval × concurrent job count × kills.  Each point drives an
open-loop :class:`~repro.app.traffic.JobTraffic` stream (staged
fetch→transform→load pipelines, Poisson arrivals) against ``n`` hosting
nodes, optionally kills and restarts hosts mid-run, and reports:

* completion/durability counts and open-loop latency + goodput;
* ``reexec`` — units physically executed more than once, i.e. the work a
  restart repeated because it lay past the recovery line;
* ``salvaged`` — units the restored checkpoint covered (the audit's count
  of live units preserved across rollbacks);
* ``reexec_scratch`` — the same scenario rerun with checkpointing disabled
  (birth checkpoint only), so every restart starts jobs from scratch: the
  from-scratch baseline the measured resume savings are computed against;
* the job-outcome audit (:func:`repro.analysis.jobs.audit_jobs`) — its
  ``committed_stage_reexecutions`` must be **0** at every point.

One additional row runs the same workload on the *live* asyncio kernel
(loopback cluster, real timers and kill/restart) to witness that the sim
rows are not a simulator artifact.

``EAPP_QUICK=1`` shrinks the sweep for CI smoke runs; the recorded
BENCH_APP.json rows come from the full sweep (jobs up to 1000).
"""

from __future__ import annotations

import asyncio
import os
import tempfile
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis import check_c1_from_trace, audit_jobs
from repro.app.state import AppProcess
from repro.app.traffic import JobTraffic
from repro.core import ProtocolConfig
from repro.errors import ConsistencyViolation
from repro.testing import build_sim
from repro.types import SimTime

# Full sweep: checkpoint interval x job count x kills.
INTERVALS: Sequence[SimTime] = (4.0, 8.0, 16.0)
JOB_COUNTS: Sequence[int] = (200, 1000)
QUICK_INTERVALS: Sequence[SimTime] = (6.0,)
QUICK_JOB_COUNTS: Sequence[int] = (120,)

N_NODES = 8
STAGES: Tuple[int, ...] = (2, 2, 2)
UNIT_TIME: SimTime = 0.25
RETRY: SimTime = 1.0
ARRIVAL_WINDOW: SimTime = 30.0   # all jobs arrive within this window
HORIZON: SimTime = 120.0
RUN_UNTIL: SimTime = 125.0
KILLS = 2                        # hosts killed in the kills-enabled points
# The first kill lands after even the widest-interval point has committed a
# checkpoint (t=16 at interval 16) but while arrivals are still in flight,
# so every sweep point measures a restore from real progress, not birth.
KILL_AT: SimTime = 18.0
DOWNTIME: SimTime = 6.0
KILL_STAGGER: SimTime = 7.0


def quick_mode() -> bool:
    """True when the reduced CI sweep was requested via ``EAPP_QUICK``."""
    return os.environ.get("EAPP_QUICK", "") not in ("", "0")


def _drive_sim(
    jobs: int,
    interval: Optional[SimTime],
    kills: int,
    seed: int = 0,
) -> Dict[str, Any]:
    """One simulated point: traffic + optional kill/restart schedule."""
    config = ProtocolConfig(checkpoint_interval=interval, failure_resilience=True)
    sim, procs = build_sim(
        n=N_NODES, seed=seed, cls=AppProcess, config=config,
        detector_latency=1.0, spoolers=True,
    )
    traffic = JobTraffic(
        jobs=jobs, rate=jobs / ARRIVAL_WINDOW, stages=STAGES,
        unit_time=UNIT_TIME, retry=RETRY, horizon=HORIZON,
    )
    traffic.install(sim, procs)
    for i in range(kills):
        pid = 1 + i
        t_kill = KILL_AT + i * KILL_STAGGER
        sim.scheduler.at(t_kill, lambda p=pid: sim.crash(p), label=f"kill P{pid}")
        sim.scheduler.at(
            t_kill + DOWNTIME, lambda p=pid: sim.recover(p), label=f"restart P{pid}"
        )
    t0 = time.perf_counter()
    sim.run(until=RUN_UNTIL)
    wall = time.perf_counter() - t0
    metrics = traffic.metrics()
    audit = audit_jobs(sim.trace.index)
    committed = sum(len(p.committed_history) for p in procs.values())
    return {
        "metrics": metrics,
        "audit": audit,
        "committed_checkpoints": committed,
        "wall_s": wall,
    }


def app_row(
    jobs: int, interval: SimTime, kills: int, scratch_reexec: Optional[int]
) -> Dict[str, Any]:
    """One sweep row (checkpointing on), with the from-scratch comparator."""
    result = _drive_sim(jobs, interval, kills)
    metrics, audit = result["metrics"], result["audit"]
    reexec = metrics["units_reexecuted"]
    row: Dict[str, Any] = {
        "kernel": "sim",
        "n": N_NODES,
        "jobs": jobs,
        "interval": interval,
        "kills": kills,
        "jobs_done": metrics["jobs_done"],
        "jobs_durable": metrics["jobs_durable"],
        "latency_mean": round(metrics["latency_mean"], 2)
        if metrics["latency_mean"] is not None else None,
        "goodput": round(metrics["goodput"], 2)
        if metrics["goodput"] is not None else None,
        "units": metrics["units_needed_done"],
        "reexec": reexec,
        "salvaged": audit["units_salvaged"],
        "stage_reexec_violations": audit["committed_stage_reexecutions"],
        "committed_checkpoints": result["committed_checkpoints"],
        "wall_s": round(result["wall_s"], 2),
    }
    if kills and scratch_reexec is not None:
        row["reexec_scratch"] = scratch_reexec
        row["savings_pct"] = round(
            100.0 * (1.0 - reexec / scratch_reexec) if scratch_reexec else 0.0, 1
        )
    return row


def live_row(jobs: int = 40, interval: SimTime = 6.0) -> Dict[str, Any]:
    """The same workload on the live asyncio kernel, kill/restart included."""
    from repro.runtime.cluster import Cluster

    async def drive(root: str) -> Dict[str, Any]:
        config = ProtocolConfig(checkpoint_interval=interval, failure_resilience=True)
        cluster = Cluster(
            n=4, root=root, seed=0, transport="loopback", config=config,
            process_cls=AppProcess, time_scale=0.005,
        )
        traffic = JobTraffic(
            jobs=jobs, rate=jobs / ARRIVAL_WINDOW, stages=STAGES,
            unit_time=UNIT_TIME, retry=RETRY, horizon=80.0,
        )
        traffic.install(cluster.runtime, cluster.procs)
        cluster.schedule_kill(1, KILL_AT)
        cluster.schedule_restart(1, KILL_AT + DOWNTIME)
        await cluster.start()
        await cluster.wait_until(
            lambda: all(h.durable for h in traffic.driver.handles.values()),
            timeout=400.0, what="live app jobs to complete durably",
        )
        await cluster.quiesce()
        await cluster.shutdown()
        metrics = traffic.metrics()
        index = cluster.merged_index()
        audit = audit_jobs(index)
        try:
            check_c1_from_trace(index, sorted(cluster.procs))
            c1 = True
        except ConsistencyViolation:
            c1 = False
        return {"metrics": metrics, "audit": audit, "c1": c1}

    t0 = time.perf_counter()
    with tempfile.TemporaryDirectory() as root:
        result = asyncio.run(drive(root))
    metrics, audit = result["metrics"], result["audit"]
    return {
        "kernel": "live",
        "n": 4,
        "jobs": jobs,
        "interval": interval,
        "kills": 1,
        "jobs_done": metrics["jobs_done"],
        "jobs_durable": metrics["jobs_durable"],
        "latency_mean": round(metrics["latency_mean"], 2)
        if metrics["latency_mean"] is not None else None,
        "goodput": round(metrics["goodput"], 2)
        if metrics["goodput"] is not None else None,
        "units": metrics["units_needed_done"],
        "reexec": metrics["units_reexecuted"],
        "salvaged": audit["units_salvaged"],
        "stage_reexec_violations": audit["committed_stage_reexecutions"],
        "c1": result["c1"],
        "wall_s": round(time.perf_counter() - t0, 2),
    }


def experiment_app() -> List[Dict[str, Any]]:
    """The E-APP table: sim sweep + one live witness row."""
    intervals = QUICK_INTERVALS if quick_mode() else INTERVALS
    job_counts = QUICK_JOB_COUNTS if quick_mode() else JOB_COUNTS
    rows: List[Dict[str, Any]] = []
    for jobs in job_counts:
        # One from-scratch comparator per job count: same kills, birth
        # checkpoint only, so every restart loses all progress.
        scratch = _drive_sim(jobs, None, KILLS)
        scratch_reexec = scratch["metrics"]["units_reexecuted"]
        for interval in intervals:
            for kills in (0, KILLS):
                rows.append(
                    app_row(jobs, interval, kills, scratch_reexec if kills else None)
                )
    rows.append(live_row())
    return rows
