"""Run every reproduction experiment and print its artifact.

Usage::

    python -m repro.bench                       # everything (minutes)
    python -m repro.bench fig3 table5           # a selection
    python -m repro.bench fig2 --json out.json  # + machine-readable artifact
    python -m repro.bench --parallel 4          # fan experiments out over 4 processes

The printed tables are what EXPERIMENTS.md records; ``--json`` writes the
same rows (experiment name → title + row dicts) for scripted consumers.
``--parallel N`` runs the selected experiments across ``N`` worker
processes; every experiment seeds its simulations explicitly, so the merged
artifact is identical to a serial run (rows merge in registry order, not
completion order).
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Callable, Dict, List, Tuple

from repro.bench import ablations as A
from repro.bench import app as APP
from repro.bench import churn as CH
from repro.bench import experiments as E
from repro.bench import live as L
from repro.bench import native as N
from repro.bench import perf as P
from repro.bench import scale as S
from repro.bench import shards as SH
from repro.bench.harness import format_table, print_experiment, rows_to_json, write_json
from repro.bench.parallel import run_registry_parallel

# name -> (table title, thunk returning the table's rows).  Experiments that
# produce a single summary dict are wrapped into one-row tables here so every
# artifact has the same shape (a list of rows) in both ASCII and JSON form.
REGISTRY: Dict[str, Tuple[str, Callable[[], List[Dict[str, Any]]]]] = {
    "scale": ("Instance cost vs. system size", lambda: A.experiment_scale()),
    "abl-freq": ("Checkpoint frequency trade-off", lambda: A.experiment_checkpoint_frequency()),
    "abl-detect": ("Detection latency vs. blocking", lambda: A.experiment_detection_latency()),
    "abl-topology": ("Workload topology vs. tree shape", lambda: A.experiment_topology()),
    "observability": ("Trace pipeline: streaming + index at scale", lambda: A.experiment_observability()),
    "fig1": ("Fig. 1 — inconsistency prevented", lambda: [E.experiment_fig1()]),
    "fig2": ("Fig. 2 — message labels", lambda: E.experiment_fig2()),
    "fig3": ("Fig. 3 / Example 1 — chain tree", lambda: [E.experiment_fig3()]),
    "fig4": ("Fig. 4 / Example 2 — interference", lambda: [E.experiment_fig4()]),
    "table5": ("Section 5 comparison (measured)", lambda: E.experiment_table5()),
    "minimality": ("Theorems 3/4 — minimality", lambda: [E.experiment_minimality()]),
    "concurrency": ("Concurrency scaling", lambda: E.experiment_concurrency()),
    "failures": ("Section 6 — multiple failures", lambda: [E.experiment_failures()]),
    "partition": ("Section 6 — partitioning", lambda: [E.experiment_partition()]),
    "nonfifo": ("Non-FIFO channels", lambda: [E.experiment_nonfifo()]),
    "extension": ("Section 3.5.3 extension", lambda: E.experiment_extension()),
    "domino": ("Domino effect (motivation)", lambda: E.experiment_domino()),
    "perf": ("E-PERF — snapshot engine + parallel sweeps", lambda: P.experiment_perf()),
    "live": ("E-LIVE — live kernel vs. simulator", lambda: L.experiment_live()),
    "escale": ("E-SCALE — wire codec + batching throughput", lambda: S.experiment_scale_pass()),
    "enative": ("E-NATIVE — compiled vs interpreted hot paths", lambda: N.experiment_native()),
    "escale-shards": ("E-SCALE — sharded runtime scaling", lambda: SH.experiment_shards()),
    "eapp": ("E-APP — checkpoint-as-a-service job workload", lambda: APP.experiment_app()),
    "echurn": ("E-CHURN — checkpointing under membership churn", lambda: CH.experiment_churn()),
}


def format_registry() -> str:
    """One line per experiment: key + its table title (the description)."""
    width = max(len(name) for name in REGISTRY)
    return "\n".join(
        f"  {name:<{width}}  {title}" for name, (title, _) in sorted(REGISTRY.items())
    )


def run_experiment(name: str) -> Tuple[str, List[Dict[str, Any]]]:
    """Run one registered experiment; returns its table title and rows."""
    title, thunk = REGISTRY[name]
    return title, thunk()


def main(argv: list) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run reproduction experiments and print their artifacts.",
    )
    parser.add_argument(
        "names", nargs="*", metavar="EXPERIMENT",
        help="experiments to run (default: all)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the artifacts as JSON to PATH",
    )
    parser.add_argument(
        "--parallel", metavar="N", type=int, default=1,
        help="run experiments across N worker processes (default: 1, serial)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="run under cProfile and write a .pstats file next to the JSON "
             "artifact (or ./bench.pstats); forces serial execution",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="list available experiments with one-line descriptions and exit",
    )
    args = parser.parse_args(argv)
    if args.list:
        print("available experiments:")
        print(format_registry())
        return 0
    if args.parallel < 1:
        print(f"--parallel must be >= 1, got {args.parallel}")
        return 2

    names = args.names or list(REGISTRY)
    unknown = [n for n in names if n not in REGISTRY]
    if unknown:
        print(
            "unknown experiment(s): "
            + ", ".join(repr(n) for n in unknown)
            + "\navailable experiments:"
        )
        print(format_registry())
        return 2
    if args.json is not None:
        # Fail on an unwritable path now, not after minutes of experiments.
        try:
            with open(args.json, "w", encoding="utf-8"):
                pass
        except OSError as error:
            print(f"cannot write --json file {args.json}: {error}")
            return 2

    profiler = None
    workers = args.parallel
    if args.profile:
        import cProfile

        if workers != 1:
            print("--profile forces serial execution (profiling one process)")
            workers = 1
        profiler = cProfile.Profile()
        profiler.enable()

    artifacts: Dict[str, Dict[str, Any]] = {}
    try:
        results = run_registry_parallel(names, workers=workers)
        for name, (title, rows) in zip(names, results):
            print_experiment(name, format_table(rows, title=title))
            artifacts[name] = {"title": title, "rows": rows_to_json(rows)}
    finally:
        if profiler is not None:
            profiler.disable()
            stats_path = (
                f"{args.json}.pstats" if args.json is not None else "bench.pstats"
            )
            profiler.dump_stats(stats_path)
            print(
                f"wrote cProfile stats to {stats_path} "
                "(inspect with: python -m pstats ... or snakeviz)"
            )
    if args.json is not None:
        write_json(args.json, artifacts)
        print(f"wrote JSON artifacts for {len(artifacts)} experiment(s) to {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
