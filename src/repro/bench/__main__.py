"""Run every reproduction experiment and print its artifact.

Usage::

    python -m repro.bench              # everything (minutes)
    python -m repro.bench fig3 table5  # a selection

The printed tables are what EXPERIMENTS.md records.
"""

from __future__ import annotations

import sys

from repro.bench import ablations as A
from repro.bench import experiments as E
from repro.bench.harness import format_table, print_experiment

REGISTRY = {
    "scale": lambda: format_table(A.experiment_scale(), title="Instance cost vs. system size"),
    "abl-freq": lambda: format_table(A.experiment_checkpoint_frequency(), title="Checkpoint frequency trade-off"),
    "abl-detect": lambda: format_table(A.experiment_detection_latency(), title="Detection latency vs. blocking"),
    "abl-topology": lambda: format_table(A.experiment_topology(), title="Workload topology vs. tree shape"),
    "fig1": lambda: format_table([E.experiment_fig1()], title="Fig. 1 — inconsistency prevented"),
    "fig2": lambda: format_table(E.experiment_fig2(), title="Fig. 2 — message labels"),
    "fig3": lambda: format_table([E.experiment_fig3()], title="Fig. 3 / Example 1 — chain tree"),
    "fig4": lambda: format_table([E.experiment_fig4()], title="Fig. 4 / Example 2 — interference"),
    "table5": lambda: format_table(E.experiment_table5(), title="Section 5 comparison (measured)"),
    "minimality": lambda: format_table([E.experiment_minimality()], title="Theorems 3/4 — minimality"),
    "concurrency": lambda: format_table(E.experiment_concurrency(), title="Concurrency scaling"),
    "failures": lambda: format_table([E.experiment_failures()], title="Section 6 — multiple failures"),
    "partition": lambda: format_table([E.experiment_partition()], title="Section 6 — partitioning"),
    "nonfifo": lambda: format_table([E.experiment_nonfifo()], title="Non-FIFO channels"),
    "extension": lambda: format_table(E.experiment_extension(), title="Section 3.5.3 extension"),
    "domino": lambda: format_table(E.experiment_domino(), title="Domino effect (motivation)"),
}


def main(argv: list) -> int:
    names = argv or list(REGISTRY)
    unknown = [n for n in names if n not in REGISTRY]
    if unknown:
        print(f"unknown experiments: {unknown}; available: {sorted(REGISTRY)}")
        return 2
    for name in names:
        print_experiment(name, REGISTRY[name]())
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
