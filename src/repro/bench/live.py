"""E-LIVE — the live kernel against the simulator on one workload.

Runs the identical seeded random workload under three kernels:

* the discrete-event :class:`~repro.sim.simulation.Simulation` (virtual
  time — the fast baseline);
* :class:`~repro.runtime.loop.AsyncRuntime` with the loopback transport and
  the wire codec on (every message JSON round-trips);
* the same with the codec off (pure real-timer kernel overhead).

Reported per kernel: wall seconds, protocol messages sent, trace events,
and committed checkpoints — the protocol-visible columns must agree across
kernels (same seed, same delay model), which the table makes auditable;
wall time shows what real timers and serialization cost.  The live rows run
at an aggressive ``time_scale`` so the whole experiment stays in CI budget.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List

from repro.runtime.transport import LoopbackTransport
from repro.testing import build_runtime, build_sim, run_random_workload
from repro.workloads import RandomPeerWorkload

DURATION = 20.0
SEED = 11
N = 4
TIME_SCALE = 0.01
SETTLE = 10.0


def _row(kernel: str, wall: float, net: Any, trace_events: int, procs: Dict) -> Dict[str, Any]:
    return {
        "kernel": kernel,
        "wall_s": round(wall, 3),
        "normal_sent": net.normal_sent,
        "control_sent": net.control_sent,
        "delivered": net.delivered,
        "trace_events": trace_events,
        "committed": sum(len(p.committed_history) for p in procs.values()),
    }


def _run_sim() -> Dict[str, Any]:
    start = time.perf_counter()
    sim, procs = build_sim(n=N, seed=SEED)
    run_random_workload(sim, procs, duration=DURATION, checkpoint_rate=0.1)
    wall = time.perf_counter() - start
    return _row("simulation", wall, sim.network, sim.trace.events_recorded, procs)


def _run_live(codec: bool) -> Dict[str, Any]:
    start = time.perf_counter()
    runtime, procs = build_runtime(
        n=N,
        seed=SEED,
        transport=LoopbackTransport(codec=codec),
        time_scale=TIME_SCALE,
    )
    RandomPeerWorkload(
        message_rate=1.0, duration=DURATION, checkpoint_rate=0.1
    ).install(runtime, procs)
    runtime.run(DURATION + SETTLE)
    wall = time.perf_counter() - start
    label = "live loopback" + (" (wire codec)" if codec else "")
    return _row(label, wall, runtime.network, runtime.trace.events_recorded, procs)


def experiment_live() -> List[Dict[str, Any]]:
    """Kernel comparison rows for the E-LIVE table."""
    return [_run_sim(), _run_live(codec=True), _run_live(codec=False)]
