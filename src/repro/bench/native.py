"""E-NATIVE — compiled vs. interpreted hot paths, measured honestly.

The native build (see DESIGN.md §14) compiles the wire-v2 codec and the
snapshot freeze/diff/hash kernels to C extensions behind the
:mod:`repro._native` loader; the engine event loop stays interpreted (its
compilation requires the mypyc toolchain, which the reference environment
does not ship).  This experiment is the speedup matrix for that work:

1. **codec** — wire-v2 encode+decode round-trips per second, interpreted
   (``wire._py_roundtrip``, the pure-Python implementation kept importable
   for exactly this A/B) vs. whatever the public ``wire.roundtrip`` is
   bound to.  The E-SCALE burst shape at n ∈ {64, 256, 1024}.  This is the
   row the PR's >= 5x claim rides on.
2. **snapshot** — freeze / content-hash / diff rates on an n-entry
   JSON-shaped state, interpreted vs. native.  Reported even though the
   deltas are small: both backends spend most of their time constructing
   the same Python ``FrozenDict``/``FrozenList`` objects, so the honest
   number is near 1x (diff benefits most).
3. **sim** — an end-to-end protocol run (4 processes, ring workload with
   periodic checkpoints) executed in subprocesses under ``REPRO_NATIVE=0``
   vs. the native build, because the backend is chosen at import time.
   The discrete-event kernel never touches the wire codec and the engine
   is interpreted either way, so this row isolates what the compiled
   snapshot path buys a *whole* simulation — the delta is reported
   whatever it is.

When the extensions are not built (no C toolchain), every row is clearly
marked ``interpreted-fallback`` and no speedup is claimed.

``ENATIVE_QUICK=1`` shrinks the sweep to n=64 with fewer reps (CI shape).
"""

from __future__ import annotations

import json
import os
import statistics
import subprocess
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.net.message import Envelope, normal
from repro.runtime import wire
from repro.stable import snapshot as snap
from repro.types import MessageId

SIZES: Sequence[int] = (64, 256, 1024)
REPS = 5
SIM_REPS = 3
QUICK_SIZES: Sequence[int] = (64,)
QUICK_REPS = 2


def quick_mode() -> bool:
    """True when the reduced CI sweep was requested via ``ENATIVE_QUICK``."""
    return os.environ.get("ENATIVE_QUICK", "") not in ("", "0")


def backend_label() -> str:
    """The active codec/snapshot backend, for the table's ``backend`` column."""
    return "cext" if wire.native_active() and snap.native_active() else "interpreted-fallback"


def _median_rate(reps: int, run: Callable[[], float]) -> float:
    """Median rate over ``reps`` runs, after one warm-up run."""
    run()
    return statistics.median(run() for _ in range(reps))


def _burst(n: int) -> List[Envelope]:
    """The E-SCALE workload shape: n light normal envelopes P0 -> P1."""
    burst = [normal(0, 1, MessageId(0, i), label=1, body=None) for i in range(n)]
    for envelope in burst:  # realistic: stamped as the network would
        envelope.send_time = 1.0
    return burst


# ----------------------------------------------------------------------
# Row 1: the wire-v2 codec
# ----------------------------------------------------------------------
def codec_row(n: int, reps: int) -> Dict[str, Any]:
    """Interpreted vs. native round-trips/sec for the binary v2 codec."""
    burst = _burst(n)

    def roundtrips(fn: Callable[..., Envelope]) -> Callable[[], float]:
        def run() -> float:
            start = time.perf_counter()
            for envelope in burst:
                fn(envelope, version=wire.WIRE_V2)
            return n / (time.perf_counter() - start)

        return run

    interp = _median_rate(reps, roundtrips(wire._py_roundtrip))
    row: Dict[str, Any] = {
        "metric": "codec",
        "n": n,
        "backend": backend_label(),
        "interp_env_s": round(interp),
    }
    if wire.native_active():
        native = _median_rate(reps, roundtrips(wire.roundtrip))
        row["native_env_s"] = round(native)
        row["speedup"] = round(native / interp, 2)
    else:
        # No toolchain: one honest interpreted column, no speedup claimed.
        row["native_env_s"] = None
        row["speedup"] = None
    return row


# ----------------------------------------------------------------------
# Row 2: the snapshot kernels
# ----------------------------------------------------------------------
def _snapshot_state(n: int) -> Dict[str, Any]:
    """An n-entry JSON-shaped state with nesting (the freeze worst case)."""
    return {
        f"k{i}": {"a": [i, i * 2, "x" * 8], "b": {"n": i, "s": str(i)}, "c": i * 0.5}
        for i in range(n)
    }


def snapshot_row(n: int, reps: int) -> Dict[str, Any]:
    """Interpreted vs. native freeze / content-hash / diff rates."""
    state = _snapshot_state(n)
    changed = _snapshot_state(n)
    changed["k0"]["b"]["n"] = -1
    base = snap._py_freeze(state)
    target = snap._py_freeze(changed)

    def timed(fn: Callable[..., Any], *fn_args: Any) -> Callable[[], float]:
        def run() -> float:
            start = time.perf_counter()
            fn(*fn_args)
            return 1.0 / (time.perf_counter() - start)

        return run

    def hash_run(hasher: Callable[[Any], int], frozen: Any) -> Callable[[], float]:
        def run() -> float:
            # content_hash caches on the frozen containers; re-freeze so each
            # rep hashes cold, which is the rate a snapshot store actually pays.
            cold = snap._py_freeze(state)
            start = time.perf_counter()
            hasher(cold)
            return 1.0 / (time.perf_counter() - start)

        return run

    row: Dict[str, Any] = {"metric": "snapshot", "n": n, "backend": backend_label()}
    pairs = {
        "freeze": (timed(snap._py_freeze, state), timed(snap.freeze, state)),
        "hash": (hash_run(snap._py_content_hash, base), hash_run(snap.content_hash, base)),
        "diff": (timed(snap._py_diff, base, target), timed(snap.diff, base, target)),
    }
    for op, (interp_run, native_run) in pairs.items():
        interp = _median_rate(reps, interp_run)
        row[f"interp_{op}_s"] = round(interp, 1)
        if snap.native_active():
            native = _median_rate(reps, native_run)
            row[f"{op}_speedup"] = round(native / interp, 2)
        else:
            row[f"{op}_speedup"] = None
    return row


# ----------------------------------------------------------------------
# Row 3: a whole simulation, backend chosen per subprocess
# ----------------------------------------------------------------------
_SIM_CHILD = r"""
import json, sys, time
from repro.core import CheckpointProcess
from repro.net import FixedDelay
from repro.sim import Simulation
from repro.workloads import ScriptedWorkload

n = int(sys.argv[1])
steps, t = [], 1.0
for i in range(n):
    steps.append((t, "send", i % 4, (i + 1) % 4, i))
    t += 0.05
    if (i + 1) % 16 == 0:
        steps.append((t, "checkpoint", i % 4))
        t += 0.05

sim = Simulation(seed=1, delay_model=FixedDelay(0.5))
procs = {p: sim.add_node(CheckpointProcess(p)) for p in range(4)}
ScriptedWorkload(steps).install(sim, procs)
start = time.perf_counter()
sim.run(until=t + 20.0)
wall = time.perf_counter() - start

import repro.stable.snapshot as S
print(json.dumps({
    "wall": wall,
    "events": sim.scheduler.events_processed,
    "snapshot_backend": "cext" if S.native_active() else "interpreted",
}))
"""


def _sim_child(n: int, native: bool) -> Dict[str, Any]:
    """One protocol run in a subprocess pinned to one backend."""
    import repro

    env = dict(os.environ)
    env["REPRO_NATIVE"] = "auto" if native else "0"
    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _SIM_CHILD, str(n)],
        env=env, capture_output=True, text=True, check=True,
    )
    return json.loads(proc.stdout)


def sim_row(n: int, reps: int) -> Dict[str, Any]:
    """End-to-end simulator events/sec under each backend (subprocess A/B)."""

    def rate(native: bool) -> Callable[[], float]:
        def run() -> float:
            result = _sim_child(n, native)
            return result["events"] / result["wall"]

        return run

    interp = _median_rate(reps, rate(False))
    row: Dict[str, Any] = {
        "metric": "sim",
        "n": n,
        # The engine event loop is interpreted in *both* columns (no mypyc
        # toolchain); the native column's delta is the compiled snapshot
        # path as seen by a whole run.
        "backend": f"{backend_label()}, engine=interpreted",
        "interp_events_s": round(interp),
    }
    if snap.native_active():
        native = _median_rate(reps, rate(True))
        row["native_events_s"] = round(native)
        row["speedup"] = round(native / interp, 2)
    else:
        row["native_events_s"] = None
        row["speedup"] = None
    return row


def experiment_native(
    sizes: Optional[Sequence[int]] = None,
    reps: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """The E-NATIVE table (see EXPERIMENTS.md)."""
    if sizes is None:
        sizes = QUICK_SIZES if quick_mode() else SIZES
    if reps is None:
        reps = QUICK_REPS if quick_mode() else REPS
    sim_reps = QUICK_REPS if quick_mode() else SIM_REPS
    rows: List[Dict[str, Any]] = []
    for n in sizes:
        rows.append(codec_row(n, reps))
    for n in sizes:
        rows.append(snapshot_row(n, reps))
    for n in sizes:
        rows.append(sim_row(n, sim_reps))
    return rows


__all__ = [
    "backend_label",
    "codec_row",
    "experiment_native",
    "quick_mode",
    "sim_row",
    "snapshot_row",
]
