"""Benchmark harness: experiments (one per paper artifact) and printers."""

from repro.bench.harness import format_series, format_table, print_experiment

__all__ = ["format_series", "format_table", "print_experiment"]
