"""Experiment harness: parameter sweeps and ASCII table/series printers.

Each experiment in :mod:`repro.bench.experiments` returns plain dict rows;
this module renders them the way EXPERIMENTS.md records them, so the
benchmark suite, the CLI (``python -m repro.bench``) and the documentation
all show literally the same artifact.  :func:`write_json` emits the same
rows as a machine-readable artifact (``python -m repro.bench --json``).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.sim.trace import json_safe


def format_table(
    rows: Sequence[Dict[str, Any]],
    columns: Optional[Sequence[str]] = None,
    title: str = "",
) -> str:
    """Render dict rows as a fixed-width ASCII table.

    When ``columns`` is not given, the header is the union of every row's
    keys in first-seen order — rows with extra keys (e.g. a sweep that adds
    a metric mid-way) no longer silently lose them.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        seen: Dict[str, None] = {}
        for row in rows:
            for key in row:
                seen.setdefault(key, None)
        columns = list(seen)
    cells = [[_fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), *(len(c[i]) for c in cells))
        for i, col in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(str(col).ljust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row_cells in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row_cells, widths)))
    return "\n".join(lines)


def format_series(
    points: Iterable[tuple],
    x_label: str,
    y_label: str,
    title: str = "",
) -> str:
    """Render (x, y) points as a two-column series listing."""
    rows = [{x_label: x, y_label: y} for x, y in points]
    return format_table(rows, [x_label, y_label], title=title)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def print_experiment(name: str, rendered: str) -> None:
    """Print an experiment artifact with a banner (goes into bench output)."""
    bar = "=" * max(len(name) + 12, 40)
    print(f"\n{bar}\n EXPERIMENT {name}\n{bar}\n{rendered}\n")


def rows_to_json(rows: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """The exact rows a table renders, coerced to JSON-representable values."""
    return [{str(key): json_safe(value) for key, value in row.items()} for row in rows]


def write_json(path: str, artifacts: Dict[str, Dict[str, Any]]) -> None:
    """Write experiment artifacts as a JSON document.

    ``artifacts`` maps experiment name to ``{"title": ..., "rows": [...]}``
    where the rows are the same dicts the ASCII tables render (pass them
    through :func:`rows_to_json`).  Insertion order is preserved so the JSON
    lists experiments in the order they ran.
    """
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(artifacts, handle, indent=2)
        handle.write("\n")
