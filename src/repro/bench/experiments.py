"""The reproduction experiments, one function per DESIGN.md experiment id.

Every function is pure simulation (no printing) and returns the rows/series
that EXPERIMENTS.md records.  The pytest-benchmark wrappers in
``benchmarks/`` time them and assert the *shape* claims; the CLI
(``python -m repro.bench``) prints the artifacts.
"""

from __future__ import annotations

from typing import Any, Dict, List, Type

from repro.analysis import (
    check_c1,
    check_checkpoint_minimality,
    check_quiescent,
    check_recovery_line,
    check_rollback_minimality,
    collect,
    domino_metrics,
    reconstruct_trees,
)
from repro.baselines import (
    BarigazziStriginiProcess,
    ChandyLamportProcess,
    KooTouegProcess,
    TamirSequinProcess,
    UncoordinatedProcess,
)
from repro.core import (
    CheckpointProcess,
    ExtendedCheckpointProcess,
    PartitionCoordinator,
    ProtocolConfig,
)
from repro.failure import FailureInjector, VoteRegistry
from repro.net import AdversarialReorderDelay, ExponentialDelay, FixedDelay, UniformDelay
from repro.sim import Simulation
from repro.testing import build_sim, run_random_workload
from repro.workloads import (
    ScriptedWorkload,
    figure2_steps,
    figure3_steps,
    figure4_steps,
)

ALGORITHMS: Dict[str, Type[CheckpointProcess]] = {
    "leu-bhargava": CheckpointProcess,
    "leu-bhargava-ext": ExtendedCheckpointProcess,
    "koo-toueg": KooTouegProcess,
    "tamir-sequin": TamirSequinProcess,
    "chandy-lamport": ChandyLamportProcess,
    "barigazzi-strigini": BarigazziStriginiProcess,
}

# Only the Leu-Bhargava algorithms tolerate non-FIFO channels.
FIFO_REQUIRED = {"koo-toueg", "tamir-sequin", "chandy-lamport", "barigazzi-strigini"}


def _numbered_sim(first: int, last: int, seed: int) -> tuple:
    sim = Simulation(seed=seed, delay_model=FixedDelay(0.5))
    procs = {i: sim.add_node(CheckpointProcess(i)) for i in range(first, last + 1)}
    sim.run(until=0.0)
    return sim, procs


# ----------------------------------------------------------------------
# E-FIG1 .. E-FIG4 — the paper's figures
# ----------------------------------------------------------------------

def experiment_fig1() -> Dict[str, Any]:
    """Fig. 1: the algorithm never creates the inconsistent checkpoint line."""
    sim, procs = _numbered_sim(0, 1, seed=1)
    sim.scheduler.at(1.0, lambda: procs[0].send_app_message(1, "m"))
    sim.scheduler.at(3.0, lambda: procs[1].initiate_checkpoint())
    sim.run()
    check_c1(procs.values())
    return {
        "receiver_checkpoint_seq": procs[1].store.oldchkpt.seq,
        "sender_forced_to_seq": procs[0].store.oldchkpt.seq,
        "naive_line_would_be": "{P0 seq 1, P1 seq 2} (inconsistent)",
        "committed_line": "{P0 seq 2, P1 seq 2} (consistent)",
    }


def experiment_fig2() -> List[Dict[str, Any]]:
    """Fig. 2: message labels across checkpoint and rollback points."""
    sim, procs = _numbered_sim(0, 1, seed=1)
    ScriptedWorkload(figure2_steps()).install(sim, procs)
    sim.run()
    names = ["m", "l", "x", "y", "z"]
    return [
        {"message": name, "label": record.label, "paper_label": expected}
        for name, record, expected in zip(
            names, procs[0].ledger.sent, [1, 2, 3, 3, 4]
        )
    ]


def experiment_fig3() -> Dict[str, Any]:
    """Fig. 3 / Example 1: the chain tree P2 -> P3 -> P4, P1 excluded."""
    sim, procs = _numbered_sim(1, 4, seed=1)
    ScriptedWorkload(figure3_steps()).install(sim, procs)
    sim.run()
    trees = reconstruct_trees(sim.trace)
    p2_tree = next(t for t in trees.values() if t.root == 2)
    check_c1(procs.values())
    check_quiescent(procs.values())
    return {
        "tree": p2_tree.render().replace("\n", " / "),
        "edges": p2_tree.edges,
        "decided": p2_tree.decided,
        "participants_beyond_initiator": sorted(p2_tree.participants),
        "p1_left_out": 1 not in p2_tree.nodes,
        "committed_seqs": {i: procs[i].store.oldchkpt.seq for i in (1, 2, 3, 4)},
    }


def experiment_fig4() -> Dict[str, Any]:
    """Fig. 4 / Example 2: two interfering instances, shared checkpoints."""
    sim, procs = _numbered_sim(1, 4, seed=2)
    ScriptedWorkload(figure4_steps()).install(sim, procs)
    sim.run()
    trees = reconstruct_trees(sim.trace)
    check_c1(procs.values())
    check_quiescent(procs.values())
    shared = {
        pid: len(sim.trace.for_process(pid, "chkpt_tentative"))
        for pid in (3, 4)
    }
    return {
        "instances": {str(t): (v.root, v.decided) for t, v in trees.items()},
        "both_committed": all(v.decided == "commit" for v in trees.values()),
        "tentatives_taken_by_shared_members": shared,
        "no_blocking": True,
    }


# ----------------------------------------------------------------------
# E-T5 — the Section 5 comparison, measured
# ----------------------------------------------------------------------

def experiment_table5(
    n: int = 8, seeds: int = 5, duration: float = 60.0
) -> List[Dict[str, Any]]:
    """One row per algorithm: the measured Section 5 comparison."""
    rows: List[Dict[str, Any]] = []
    for name, cls in ALGORITHMS.items():
        totals = {
            "committed": 0, "aborted": 0, "rejected": 0,
            "forced": [], "ctrl": 0, "normal": 0,
            "send_blocked": 0.0, "comm_blocked": 0.0, "latency": [],
        }
        error_rate = 0.0 if name == "chandy-lamport" else 0.02
        for seed in range(seeds):
            sim, procs = build_sim(
                n=n, seed=seed, cls=cls,
                fifo=name in FIFO_REQUIRED,
                delay=UniformDelay(0.4, 0.9),
            )
            run_random_workload(
                sim, procs, duration=duration, message_rate=1.0,
                checkpoint_rate=0.05, error_rate=error_rate,
                horizon=duration * 6, max_events=600000,
            )
            stats = collect(sim)
            totals["committed"] += stats.instances_committed
            totals["aborted"] += stats.instances_aborted
            totals["rejected"] += stats.instances_rejected
            totals["forced"].extend(stats.forced_per_instance)
            totals["ctrl"] += stats.control_messages
            totals["normal"] += stats.normal_messages
            totals["send_blocked"] += stats.send_blocked_time
            totals["comm_blocked"] += stats.comm_blocked_time
            totals["latency"].extend(stats.instance_latencies)
        forced = totals["forced"]
        latency = totals["latency"]
        rows.append({
            "algorithm": name,
            "fifo_required": name in FIFO_REQUIRED,
            "committed": totals["committed"],
            "aborted": totals["aborted"],
            "rejected": totals["rejected"],
            "mean_forced": sum(forced) / len(forced) if forced else 0.0,
            "ctrl_msgs": totals["ctrl"] // seeds,
            "send_blocked": totals["send_blocked"] / seeds,
            "comm_blocked": totals["comm_blocked"] / seeds,
            "mean_latency": sum(latency) / len(latency) if latency else 0.0,
        })
    return rows


# ----------------------------------------------------------------------
# E-MIN — Theorems 3 and 4
# ----------------------------------------------------------------------

def experiment_minimality(seeds: int = 10) -> Dict[str, Any]:
    """Machine-check minimality of isolated instances across random runs."""
    checkpoint_checked = rollback_checked = 0
    for seed in range(seeds):
        sim, procs = build_sim(n=5, seed=seed, delay=UniformDelay(0.3, 0.7))
        run_random_workload(sim, procs, duration=30.0, message_rate=0.8)
        procs[seed % 5].initiate_checkpoint()
        sim.run()
        trees = reconstruct_trees(sim.trace)
        committed = [t for t, v in trees.items()
                     if v.kind == "checkpoint" and v.decided == "commit"]
        check_checkpoint_minimality(sim.trace, procs.values(), committed[-1])
        checkpoint_checked += 1

        sim, procs = build_sim(n=5, seed=seed + 1000, delay=UniformDelay(0.3, 0.7))
        run_random_workload(sim, procs, duration=30.0, message_rate=0.8)
        procs[seed % 5].initiate_rollback()
        sim.run()
        trees = reconstruct_trees(sim.trace)
        rollbacks = [t for t, v in trees.items() if v.kind == "rollback"]
        check_rollback_minimality(sim.trace, rollbacks[-1])
        rollback_checked += 1
    return {
        "checkpoint_instances_verified_minimal": checkpoint_checked,
        "rollback_instances_verified_minimal": rollback_checked,
        "violations": 0,
    }


# ----------------------------------------------------------------------
# E-CONC — concurrency scaling vs. Koo-Toueg
# ----------------------------------------------------------------------

def experiment_concurrency(max_k: int = 6, seeds: int = 4) -> List[Dict[str, Any]]:
    """k simultaneous initiators: completions and rejections per algorithm."""
    rows = []
    for k in range(1, max_k + 1):
        for name, cls in (("leu-bhargava", CheckpointProcess),
                          ("koo-toueg", KooTouegProcess)):
            committed = rejected = 0
            latencies: List[float] = []
            for seed in range(seeds):
                sim, procs = build_sim(
                    n=8, seed=seed, cls=cls, fifo=name == "koo-toueg",
                    delay=UniformDelay(0.4, 0.9),
                )
                run_random_workload(sim, procs, duration=15.0, message_rate=1.0)
                for pid in range(k):
                    procs[pid].initiate_checkpoint()
                sim.run(until=300.0, max_events=600000)
                stats = collect(sim)
                committed += stats.instances_committed
                rejected += stats.instances_rejected
                latencies.extend(stats.instance_latencies)
            rows.append({
                "k_initiators": k,
                "algorithm": name,
                "committed": committed,
                "rejected": rejected,
                "mean_latency": sum(latencies) / len(latencies) if latencies else 0.0,
            })
    return rows


# ----------------------------------------------------------------------
# E-FAIL — Section 6 resilience
# ----------------------------------------------------------------------

def experiment_failures(seeds: int = 10) -> Dict[str, Any]:
    """Crash two processes mid-run; verify termination + consistency."""
    consistent = 0
    for seed in range(seeds):
        sim, procs = build_sim(
            n=6, seed=seed, delay=ExponentialDelay(mean=1.0),
            config=ProtocolConfig(failure_resilience=True),
            detector_latency=2.0, spoolers=True,
        )
        inj = FailureInjector(sim)
        inj.crash_at(20.0, pid=seed % 6)
        inj.crash_at(25.0, pid=(seed + 3) % 6)
        inj.recover_at(45.0, pid=seed % 6)
        inj.recover_at(50.0, pid=(seed + 3) % 6)
        run_random_workload(sim, procs, duration=60.0, checkpoint_rate=0.05,
                            error_rate=0.01, horizon=400.0, max_events=600000)
        alive = [p for p in procs.values() if not p.crashed]
        assert all(not p.comm_suspended and not p.send_suspended for p in alive)
        check_recovery_line(alive)
        consistent += 1
    return {"runs": seeds, "crashes_per_run": 2, "consistent_runs": consistent}


# ----------------------------------------------------------------------
# E-PART — partitioning with weighted voting
# ----------------------------------------------------------------------

def experiment_partition(seeds: int = 6) -> Dict[str, Any]:
    """Split into major/minor, heal, verify rule-3 reintegration."""
    reintegrated = 0
    for seed in range(seeds):
        sim, procs = build_sim(
            n=6, seed=seed, delay=ExponentialDelay(mean=1.0),
            config=ProtocolConfig(failure_resilience=True),
            detector_latency=2.0, spoolers=True,
        )
        coord = PartitionCoordinator(sim, VoteRegistry.uniform(range(6)))
        coord.schedule_split(20.0, [{0, 1, 2, 3}, {4, 5}])
        coord.schedule_heal(45.0)
        run_random_workload(sim, procs, duration=60.0, checkpoint_rate=0.04,
                            error_rate=0.01, horizon=400.0, max_events=600000)
        alive = [p for p in procs.values() if not p.crashed]
        assert len(alive) == 6
        check_recovery_line(alive)
        reintegrated += 1
    return {"runs": seeds, "minority_size": 2, "reintegrated_runs": reintegrated}


# ----------------------------------------------------------------------
# E-NONFIFO — the non-FIFO claim
# ----------------------------------------------------------------------

def experiment_nonfifo(seeds: int = 8) -> Dict[str, Any]:
    """Leu-Bhargava on an adversarially reordering channel stays correct."""
    reordered_runs = consistent_runs = 0
    for seed in range(seeds):
        sim, procs = build_sim(
            n=5, seed=seed, delay=AdversarialReorderDelay(short=0.1, long=4.0)
        )
        run_random_workload(sim, procs, duration=40.0, checkpoint_rate=0.06,
                            error_rate=0.02)
        # Confirm genuine reordering occurred on some channel.
        arrivals: Dict[tuple, List[int]] = {}
        for event in sim.trace.of_kind("receive"):
            key = (event.fields["src"], event.pid)
            arrivals.setdefault(key, []).append(event.fields["msg_id"].send_index)
        if any(seq != sorted(seq) for seq in arrivals.values()):
            reordered_runs += 1
        check_quiescent(procs.values())
        check_recovery_line(procs.values())
        consistent_runs += 1
    return {
        "runs": seeds,
        "runs_with_observed_reordering": reordered_runs,
        "consistent_runs": consistent_runs,
    }


# ----------------------------------------------------------------------
# E-EXT — the Section 3.5.3 extension's blocking advantage
# ----------------------------------------------------------------------

def experiment_extension(seeds: int = 5) -> List[Dict[str, Any]]:
    """Send-blocked time: base algorithm vs. the extension."""
    rows = []
    for name, cls in (("leu-bhargava (base)", CheckpointProcess),
                      ("leu-bhargava (3.5.3 extension)", ExtendedCheckpointProcess)):
        blocked = 0.0
        committed = 0
        for seed in range(seeds):
            sim, procs = build_sim(n=6, seed=seed, delay=UniformDelay(0.4, 0.9), cls=cls)
            run_random_workload(sim, procs, duration=40.0, message_rate=1.0,
                                checkpoint_rate=0.08)
            stats = collect(sim)
            blocked += stats.send_blocked_time
            committed += stats.instances_committed
        rows.append({
            "variant": name,
            "send_blocked_time_per_run": blocked / seeds,
            "instances_committed": committed,
        })
    return rows


# ----------------------------------------------------------------------
# E-DOMINO — the motivation
# ----------------------------------------------------------------------

def experiment_domino(seeds: int = 5) -> List[Dict[str, Any]]:
    """Rollback distance: uncoordinated vs. coordinated checkpointing."""
    rows = []
    for rate in (0.2, 0.5, 1.0, 2.0):
        unco_mean = unco_max = 0.0
        for seed in range(seeds):
            sim, procs = build_sim(n=5, seed=seed, cls=UncoordinatedProcess)
            run_random_workload(sim, procs, duration=40.0,
                                message_rate=rate, checkpoint_rate=0.2)
            metrics = domino_metrics(procs.values(), initiator=0)
            unco_mean += metrics["mean_distance"]
            unco_max = max(unco_max, metrics["max_distance"])
        coord_mean = 0.0
        for seed in range(seeds):
            sim, procs = build_sim(n=5, seed=seed)
            run_random_workload(sim, procs, duration=40.0,
                                message_rate=rate, checkpoint_rate=0.2,
                                error_rate=0.02)
            metrics = domino_metrics(procs.values(), initiator=0)
            coord_mean += metrics["mean_distance"]
        rows.append({
            "message_rate": rate,
            "uncoordinated_mean_distance": unco_mean / seeds,
            "uncoordinated_max_distance": unco_max,
            "coordinated_mean_distance": coord_mean / seeds,
        })
    return rows
