"""E-SCALE — wire-protocol and trace hot-path throughput at burst scale.

The hot-path scaling pass (binary wire codec, batched TCP drain, buffered
trace sinks) is only worth its complexity if the numbers say so.  This
experiment measures the before/after at burst sizes n ∈ {64, 256, 512,
1024}, four layers deep:

1. **codec** — pure encode+decode round-trips per second for the JSON v1
   vs. binary v2 payload formats, and the framed bytes each spends per
   envelope.  No sockets, no kernel: the codec cost in isolation.
2. **sim** — the discrete-event kernel draining an n-message burst:
   scheduler events/sec and envelopes/sec with the null sink, and
   events/sec again with the buffered JSONL stream sink (the emit overhead
   a traced run actually pays).
3. **loopback** — the live kernel's in-process transport pumping the same
   burst with the codec off (``raw``), JSON, and binary.  Isolates codec
   cost inside the full delivery pipeline (real timers, delay model,
   channel policy, policy-checked delivery).
4. **tcp** — real sockets, all four corners of the before/after matrix:
   {JSON, binary} × {per-frame drain (``max_batch=1``), batched drain}.
   The ``speedup`` column is the PR's headline claim: binary+batched over
   JSON+per-frame.

Methodology: every pump timestamps the *last delivery inside the receiving
node* (polling for completion would add up to one poll interval of slack —
at these rates that is tens of percent).  Each configuration runs one
warm-up burst, then ``reps`` measured bursts, and reports the median.

``ESCALE_QUICK=1`` shrinks the sweep to n=64 with fewer reps — the CI
smoke-test shape.
"""

from __future__ import annotations

import asyncio
import os
import statistics
import tempfile
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.net.delay import FixedDelay
from repro.net.message import Envelope, normal
from repro.runtime import wire
from repro.runtime.loop import AsyncRuntime
from repro.runtime.transport import LoopbackTransport, TcpTransport, Transport
from repro.sim.node import Node
from repro.sim.simulation import Simulation
from repro.sim.trace import JsonlStreamSink, NullSink, TraceSink
from repro.types import MessageId

SIZES: Sequence[int] = (64, 256, 512, 1024)
REPS = 5
QUICK_SIZES: Sequence[int] = (64,)
QUICK_REPS = 3
TIME_SCALE = 0.005  # protocol-unit second := 5ms real; bursts finish fast


def quick_mode() -> bool:
    """True when the reduced CI sweep was requested via ``ESCALE_QUICK``."""
    return os.environ.get("ESCALE_QUICK", "") not in ("", "0")


def _burst(n: int) -> List[Envelope]:
    """The standard workload: n light normal envelopes P0 -> P1."""
    return [normal(0, 1, MessageId(0, i), label=1, body=None) for i in range(n)]


class _Collector(Node):
    """Receiver that timestamps its ``expect``-th delivery (no poll slack)."""

    def __init__(self, pid: int, expect: int) -> None:
        super().__init__(pid)
        self.expect = expect
        self.got = 0
        self.done_at: Optional[float] = None

    def on_envelope(self, envelope: Envelope) -> None:
        self.got += 1
        if self.got == self.expect:
            self.done_at = time.perf_counter()


def _pump_live(n: int, transport: Transport) -> float:
    """Envelopes/sec for one n-burst through a live transport."""
    runtime = AsyncRuntime(
        seed=0,
        transport=transport,
        delay_model=FixedDelay(0.0),
        sinks=[NullSink()],
        time_scale=TIME_SCALE,
    )
    sender = runtime.add_node(_Collector(0, 0))
    receiver = runtime.add_node(_Collector(1, n))

    async def scenario() -> float:
        await runtime.start()
        start = time.perf_counter()
        for envelope in _burst(n):
            sender.send(envelope)
        await runtime.wait_until(
            lambda: receiver.done_at is not None, timeout=2000.0, what="burst drain"
        )
        assert receiver.done_at is not None
        wall = receiver.done_at - start
        await runtime.shutdown()
        return n / wall

    return asyncio.run(scenario())


def _median_rate(reps: int, run: Callable[[], float]) -> float:
    """Median envelopes/sec over ``reps`` runs, after one warm-up run."""
    run()
    return statistics.median(run() for _ in range(reps))


# ----------------------------------------------------------------------
# Layer 1: the codec in isolation
# ----------------------------------------------------------------------
def codec_row(n: int, reps: int) -> Dict[str, Any]:
    """Round-trips/sec and framed bytes for JSON v1 vs binary v2."""
    burst = _burst(n)
    for envelope in burst:  # realistic: stamped as the network would
        envelope.send_time = 1.0

    def roundtrips(version: int) -> Callable[[], float]:
        def run() -> float:
            start = time.perf_counter()
            for envelope in burst:
                wire.roundtrip(envelope, version=version)
            return n / (time.perf_counter() - start)

        return run

    json_rate = _median_rate(reps, roundtrips(wire.WIRE_V1))
    binary_rate = _median_rate(reps, roundtrips(wire.WIRE_V2))
    sample = burst[0]
    return {
        "metric": "codec",
        "n": n,
        "json_env_s": round(json_rate),
        "binary_env_s": round(binary_rate),
        "json_bytes_frame": len(wire.dumps_frame(sample, version=wire.WIRE_V1)),
        "binary_bytes_frame": len(wire.dumps_frame(sample, version=wire.WIRE_V2)),
        "speedup": round(binary_rate / json_rate, 2),
    }


# ----------------------------------------------------------------------
# Layer 2: the discrete-event kernel
# ----------------------------------------------------------------------
def _pump_sim(n: int, sinks: List[TraceSink]) -> Dict[str, float]:
    """Wall-clock for the simulator draining an n-burst."""
    sim = Simulation(seed=0, delay_model=FixedDelay(0.1), sinks=sinks)
    sender = sim.add_node(_Collector(0, 0))
    sim.add_node(_Collector(1, n))
    start = time.perf_counter()
    for envelope in _burst(n):
        sender.send(envelope)
    sim.run()
    wall = time.perf_counter() - start
    return {
        "events_s": sim.scheduler.events_processed / wall,
        "envelopes_s": n / wall,
    }


def sim_row(n: int, reps: int) -> Dict[str, Any]:
    """Kernel throughput with the null sink vs. the buffered JSONL sink."""
    null_events = _median_rate(reps, lambda: _pump_sim(n, [NullSink()])["events_s"])
    null_envelopes = _median_rate(
        reps, lambda: _pump_sim(n, [NullSink()])["envelopes_s"]
    )

    def jsonl_run() -> float:
        with tempfile.TemporaryDirectory() as root:
            sink = JsonlStreamSink(os.path.join(root, "trace.jsonl"), flush_every=64)
            rate = _pump_sim(n, [sink])["events_s"]
            sink.close()
            return rate

    jsonl_events = _median_rate(reps, jsonl_run)
    return {
        "metric": "sim",
        "n": n,
        "events_s": round(null_events),
        "envelopes_s": round(null_envelopes),
        "jsonl_events_s": round(jsonl_events),
    }


# ----------------------------------------------------------------------
# Layers 3 and 4: the live transports
# ----------------------------------------------------------------------
def loopback_row(n: int, reps: int) -> Dict[str, Any]:
    """Live in-process delivery with the codec off / JSON / binary."""
    raw = _median_rate(reps, lambda: _pump_live(n, LoopbackTransport(codec=False)))
    json_rate = _median_rate(
        reps, lambda: _pump_live(n, LoopbackTransport(codec="json"))
    )
    binary_rate = _median_rate(
        reps, lambda: _pump_live(n, LoopbackTransport(codec="binary"))
    )
    return {
        "metric": "loopback",
        "n": n,
        "raw_env_s": round(raw),
        "json_env_s": round(json_rate),
        "binary_env_s": round(binary_rate),
        "speedup": round(binary_rate / json_rate, 2),
    }


def tcp_row(n: int, reps: int, max_batch: int = 64) -> Dict[str, Any]:
    """Real sockets: {JSON, binary} x {per-frame, batched} drain."""
    rates: Dict[str, float] = {}
    bytes_frame: Dict[str, float] = {}
    for codec in ("json", "binary"):
        for batch in (1, max_batch):
            key = f"{codec}_{'perframe' if batch == 1 else 'batched'}"
            frames = 0
            sent = 0

            def run() -> float:
                nonlocal frames, sent
                transport = TcpTransport(codec=codec, max_batch=batch)
                rate = _pump_live(n, transport)
                frames, sent = transport.frames_sent, transport.bytes_sent
                return rate

            rates[key] = _median_rate(reps, run)
            bytes_frame[codec] = sent / max(frames, 1)
    return {
        "metric": "tcp",
        "n": n,
        "json_perframe_env_s": round(rates["json_perframe"]),
        "json_batched_env_s": round(rates["json_batched"]),
        "binary_perframe_env_s": round(rates["binary_perframe"]),
        "binary_batched_env_s": round(rates["binary_batched"]),
        "json_bytes_frame": round(bytes_frame["json"], 1),
        "binary_bytes_frame": round(bytes_frame["binary"], 1),
        "speedup": round(rates["binary_batched"] / rates["json_perframe"], 2),
    }


def experiment_scale_pass(
    sizes: Optional[Sequence[int]] = None,
    reps: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """The E-SCALE table (see EXPERIMENTS.md)."""
    if sizes is None:
        sizes = QUICK_SIZES if quick_mode() else SIZES
    if reps is None:
        reps = QUICK_REPS if quick_mode() else REPS
    rows: List[Dict[str, Any]] = []
    for n in sizes:
        rows.append(codec_row(n, reps))
    for n in sizes:
        rows.append(sim_row(n, reps))
    for n in sizes:
        rows.append(loopback_row(n, reps))
    for n in sizes:
        rows.append(tcp_row(n, reps))
    return rows
