"""Parallel sweep runner for the benchmark CLI.

Experiments in the registry are independent of each other (each builds its
own simulations from explicit seeds), so a sweep over experiment names is
embarrassingly parallel.  This module fans the work out over a
:class:`~concurrent.futures.ProcessPoolExecutor`:

* **Processes, not threads** — experiments are pure-Python CPU work, so
  threads would serialise on the GIL.
* **Honest worker counts** — requested workers are capped by
  :func:`effective_workers` at the number of points *and* the number of
  visible CPUs: fanning 2 processes out on a 1-core container is strictly
  slower than the serial loop (process spawn + pickling with zero extra
  compute), which is exactly the ``speedup: 0.75`` regression an early
  BENCH_PERF.json recorded.  When the cap resolves to one worker the sweep
  short-circuits to a plain in-process loop.
* **One pool, chunked work** — the executor is created once and reused
  across sweeps and registry entries (worker start-up is the dominant fixed
  cost), and sweep points are submitted as one contiguous chunk per worker
  instead of one task per point, so a point costs one pickle round-trip per
  *chunk* rather than per point.
* **Deterministic seeding** — workers never draw fresh entropy.  Every
  sweep point derives its seed from the sweep's base seed and the point's
  *index* via :func:`point_seed` (a stable blake2 derivation), so results
  are identical whether a point runs in the parent, in worker 1, or in
  worker 7 — and identical run-to-run for any worker count.
* **Order-stable merging** — chunks are contiguous slices collected with
  ``executor.map`` (submission order), so concatenating their rows
  reproduces the serial order exactly.  The merged artifact (tables,
  ``--json`` output) is byte-identical to a serial run.
"""

from __future__ import annotations

import hashlib
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

_POOL: Optional[ProcessPoolExecutor] = None
_POOL_WORKERS = 0


def _visible_cpus() -> int:
    """CPUs the scheduler will actually give us (monkeypatchable in tests)."""
    return os.cpu_count() or 1


def effective_workers(workers: int, points: int) -> int:
    """Worker processes that can actually help for ``points`` work items.

    Capped at the point count (idle workers cost start-up for nothing) and
    at the visible CPU count (pure-CPU work cannot go faster than the
    cores it runs on — oversubscription only adds pickling overhead).
    """
    return max(1, min(workers, points, _visible_cpus()))


def get_pool(workers: int) -> ProcessPoolExecutor:
    """The shared executor, grown (never shrunk) to ``workers`` processes.

    Reused across sweeps and registry entries so each benchmark pays worker
    start-up once per process lifetime, not once per measurement.
    """
    global _POOL, _POOL_WORKERS
    if _POOL is None or _POOL_WORKERS < workers:
        if _POOL is not None:
            _POOL.shutdown()
        _POOL = ProcessPoolExecutor(max_workers=workers)
        _POOL_WORKERS = workers
    return _POOL


def shutdown_pool() -> None:
    """Tear down the shared executor (tests; harmless if never started)."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        _POOL.shutdown()
        _POOL = None
        _POOL_WORKERS = 0


def point_seed(base_seed: int, index: int) -> int:
    """Deterministic per-point seed, independent of scheduling.

    Derived by hashing ``(base_seed, index)`` so neighbouring points get
    uncorrelated streams (consecutive integer seeds can correlate in
    simple generators) while remaining reproducible across runs, worker
    counts, and platforms.
    """
    payload = f"{base_seed}:{index}".encode()
    return int.from_bytes(hashlib.blake2b(payload, digest_size=8).digest(), "big")


def _run_named(name: str) -> Tuple[str, List[Dict[str, Any]]]:
    """Worker entry point: run one registered experiment by name.

    Imported lazily to avoid a circular import (``__main__`` imports this
    module at the top level).  Must stay a module-level function so it is
    picklable by the process pool.
    """
    from repro.bench.__main__ import run_experiment

    return run_experiment(name)


def run_registry_parallel(
    names: Sequence[str], workers: int
) -> List[Tuple[str, List[Dict[str, Any]]]]:
    """Run registered experiments across ``workers`` processes.

    Returns ``(title, rows)`` pairs in the order of ``names`` (not in
    completion order), so callers print and serialise the same artifact a
    serial run produces.
    """
    workers = effective_workers(workers, len(names))
    if workers <= 1:
        return [_run_named(name) for name in names]
    return list(get_pool(workers).map(_run_named, names))


def _run_chunk(
    packed: Tuple[Callable[..., Dict[str, Any]], List[Tuple[Any, ...]]],
) -> List[Dict[str, Any]]:
    """Worker entry point: run one contiguous chunk of sweep points."""
    worker, chunk = packed
    return [worker(*args) for args in chunk]


def run_sweep(
    worker: Callable[..., Dict[str, Any]],
    points: Sequence[Any],
    workers: int = 1,
    base_seed: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """Map a sweep ``worker`` over ``points``, optionally in parallel.

    ``worker`` must be a module-level function (picklability).  When
    ``base_seed`` is given, the worker is called as ``worker(point, seed)``
    with a :func:`point_seed`-derived seed; otherwise ``worker(point)``.
    Rows come back in point order for any worker count.
    """
    if base_seed is not None:
        args: List[Tuple[Any, ...]] = [
            (point, point_seed(base_seed, i)) for i, point in enumerate(points)
        ]
    else:
        args = [(point,) for point in points]
    workers = effective_workers(workers, len(args))
    if workers <= 1:
        return [worker(*a) for a in args]
    size = -(-len(args) // workers)  # ceil: one contiguous chunk per worker
    chunks = [args[i : i + size] for i in range(0, len(args), size)]
    rows: List[Dict[str, Any]] = []
    for chunk_rows in get_pool(workers).map(_run_chunk, [(worker, c) for c in chunks]):
        rows.extend(chunk_rows)
    return rows
