"""Parallel sweep runner for the benchmark CLI.

Experiments in the registry are independent of each other (each builds its
own simulations from explicit seeds), so a sweep over experiment names is
embarrassingly parallel.  This module fans the work out over a
:class:`~concurrent.futures.ProcessPoolExecutor`:

* **Processes, not threads** — experiments are pure-Python CPU work, so
  threads would serialise on the GIL.
* **Deterministic seeding** — workers never draw fresh entropy.  Every
  sweep point derives its seed from the sweep's base seed and the point's
  *index* via :func:`point_seed` (a stable blake2 derivation), so results
  are identical whether a point runs in the parent, in worker 1, or in
  worker 7 — and identical run-to-run for any worker count.
* **Order-stable merging** — results are collected with ``executor.map``,
  which yields in submission order regardless of completion order.  The
  merged artifact (tables, ``--json`` output) is byte-identical to a
  serial run.

Workers are spawned lazily and only when ``workers > 1``; ``workers=1``
degrades to a plain in-process loop, which keeps single-core environments
and debugging sessions (breakpoints, tracebacks) simple.
"""

from __future__ import annotations

import hashlib
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple


def point_seed(base_seed: int, index: int) -> int:
    """Deterministic per-point seed, independent of scheduling.

    Derived by hashing ``(base_seed, index)`` so neighbouring points get
    uncorrelated streams (consecutive integer seeds can correlate in
    simple generators) while remaining reproducible across runs, worker
    counts, and platforms.
    """
    payload = f"{base_seed}:{index}".encode()
    return int.from_bytes(hashlib.blake2b(payload, digest_size=8).digest(), "big")


def _run_named(name: str) -> Tuple[str, List[Dict[str, Any]]]:
    """Worker entry point: run one registered experiment by name.

    Imported lazily to avoid a circular import (``__main__`` imports this
    module at the top level).  Must stay a module-level function so it is
    picklable by the process pool.
    """
    from repro.bench.__main__ import run_experiment

    return run_experiment(name)


def run_registry_parallel(
    names: Sequence[str], workers: int
) -> List[Tuple[str, List[Dict[str, Any]]]]:
    """Run registered experiments across ``workers`` processes.

    Returns ``(title, rows)`` pairs in the order of ``names`` (not in
    completion order), so callers print and serialise the same artifact a
    serial run produces.
    """
    if workers <= 1 or len(names) <= 1:
        return [_run_named(name) for name in names]
    with ProcessPoolExecutor(max_workers=min(workers, len(names))) as pool:
        return list(pool.map(_run_named, names))


def run_sweep(
    worker: Callable[..., Dict[str, Any]],
    points: Sequence[Any],
    workers: int = 1,
    base_seed: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """Map a sweep ``worker`` over ``points``, optionally in parallel.

    ``worker`` must be a module-level function (picklability).  When
    ``base_seed`` is given, the worker is called as ``worker(point, seed)``
    with a :func:`point_seed`-derived seed; otherwise ``worker(point)``.
    Rows come back in point order for any worker count.
    """
    if base_seed is not None:
        args: List[Tuple[Any, ...]] = [
            (point, point_seed(base_seed, i)) for i, point in enumerate(points)
        ]
    else:
        args = [(point,) for point in points]
    if workers <= 1 or len(points) <= 1:
        return [worker(*a) for a in args]
    with ProcessPoolExecutor(max_workers=min(workers, len(points))) as pool:
        return list(pool.map(_call_star, [(worker, a) for a in args]))


def _call_star(packed: Tuple[Callable[..., Any], Tuple[Any, ...]]) -> Any:
    worker, args = packed
    return worker(*args)
