"""E-SCALE ``shards`` axis — does adding worker kernels add throughput?

PR 4's hot-path pass made one kernel fast; this axis measures what the
sharded runtime buys *beyond* one kernel: aggregate envelopes/s with the
same protocol population partitioned over 1, 2, 4 and 8 worker OS
processes, at n ∈ {256, 1024} processes.

Drive pattern: every process hosts a closed-burst bench node that sends
``MESSAGES_PER_PID`` envelopes round-robin over the *global* population, so
the intra/inter-shard mix is fixed by the hash ring, not the drive.  The
measured window is the earliest send ``perf_counter`` stamp across shards
to the latest in-receiver delivery stamp — both ends recorded inside the
workers, no parent poll slack (``time.perf_counter`` is CLOCK_MONOTONIC on
Linux, comparable across processes on one machine).  One cluster is built
per configuration; a warm-up burst amortizes spawn/connect costs, then the
reported rate is the median over ``reps`` measured bursts.

Honesty: rows record the **visible CPU count**.  shards > cpus cannot
scale — the workers time-slice one core and the inter-shard wire hop is
pure overhead — so the scaling claim (aggregate throughput grows with
shards) is only meaningful, and only gated in CI, on a ≥4-CPU runner.

``ESCALE_QUICK=1`` shrinks the sweep to shards ∈ {1, 2} at n=64 with fewer
reps — the CI smoke-test shape.
"""

from __future__ import annotations

import statistics
import tempfile
from typing import Any, Dict, List, Optional, Sequence

from repro.bench.scale import QUICK_REPS, REPS, TIME_SCALE, quick_mode
from repro.runtime.shard import ShardedCluster, visible_cpus

SHARD_COUNTS: Sequence[int] = (1, 2, 4, 8)
SIZES: Sequence[int] = (256, 1024)
QUICK_SHARD_COUNTS: Sequence[int] = (1, 2)
QUICK_SIZES: Sequence[int] = (64,)
MESSAGES_PER_PID = 4


def shards_row(n: int, shards: int, reps: int) -> Dict[str, Any]:
    """Aggregate throughput for ``n`` processes over ``shards`` kernels."""
    with tempfile.TemporaryDirectory() as root:
        cluster = ShardedCluster(
            n=n, root=root, shards=shards, seed=0, bench=True,
            time_scale=TIME_SCALE, detector_latency=None, spoolers=False,
            delay=0.0,
        )
        try:
            cluster.start()
            expected = 0
            rates: List[float] = []
            latencies: List[float] = []
            for rep in range(reps + 1):  # rep 0 is the warm-up
                t_first = cluster.burst(MESSAGES_PER_PID)
                expected += n * MESSAGES_PER_PID
                t_last = cluster.wait_drained(expected, timeout=600.0)
                if rep == 0:
                    continue
                wall = max(t_last - t_first, 1e-9)
                rates.append(n * MESSAGES_PER_PID / wall)
                latencies.append(wall)
            summary = cluster.summary()
            cluster.shutdown()
        finally:
            cluster.close()
    total = summary["frames_sent"] + summary["intra_delivered"]
    return {
        "metric": "shards",
        "n": n,
        "shards": shards,
        "cpus": visible_cpus(),
        "env_s": round(statistics.median(rates)),
        "last_delivery_ms": round(statistics.median(latencies) * 1000, 2),
        "inter_shard_frac": round(summary["frames_sent"] / max(total, 1), 3),
        "messages_per_pid": MESSAGES_PER_PID,
    }


def experiment_shards(
    sizes: Optional[Sequence[int]] = None,
    shard_counts: Optional[Sequence[int]] = None,
    reps: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """The E-SCALE shards table (see EXPERIMENTS.md)."""
    if sizes is None:
        sizes = QUICK_SIZES if quick_mode() else SIZES
    if shard_counts is None:
        shard_counts = QUICK_SHARD_COUNTS if quick_mode() else SHARD_COUNTS
    if reps is None:
        reps = QUICK_REPS if quick_mode() else REPS
    rows: List[Dict[str, Any]] = []
    for n in sizes:
        for shards in shard_counts:
            rows.append(shards_row(n, shards, reps))
    return rows
