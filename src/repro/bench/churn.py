"""E-CHURN — checkpointing under membership churn: LB 2PC vs cooperative.

The membership plane claims churn is cheap: a join is inert for open
instances, a graceful leave resolves its own obligations, and neither
perturbs anyone else's checkpointing.  This experiment measures that at
cluster scale (n >= 256) for the two algorithms that scope their
checkpoints by communication history — the Leu-Bhargava 2PC trees and the
Nakamura-style cooperative partial snapshots — with and without churn.

Methodology: ``n`` processes under a locality-bounded Poisson workload
(each process messages only its ``LOCALITY`` nearest ids, the regime where
dependency-scoped checkpointing pays) initiate checkpoints autonomously
for a fixed protocol-time duration.  At nonzero churn, ``churn`` brand-new
pids join and ``churn`` members gracefully leave (each with a successor
handoff), spread across the middle of the run.  No crashes and no
rollbacks: the cooperative baseline deliberately has no recovery protocol,
so the comparison is checkpoint cost, scope, and consistency only.

Per row: committed/aborted instance counts, control messages per committed
instance, mean *scope* (processes checkpointing per committed instance —
tree participants for LB, snapshot-group size for cooperative), and the
churn-tolerant C1 battery verdict over the merged trace (mid-trace joiner
manifests, departed pids excluded as settled history).

``ECHURN_QUICK=1`` shrinks the sweep to CI size (n=24, one seed).
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, List, Sequence, Type

from repro.analysis import check_c1_from_trace
from repro.analysis.stats import collect
from repro.baselines import CooperativeProcess
from repro.core.process import CheckpointProcess
from repro.net import UniformDelay
from repro.sim import trace as T
from repro.testing import build_sim
from repro.workloads import RandomPeerWorkload

SIZES: Sequence[int] = (256,)
CHURN_LEVELS: Sequence[int] = (0, 8)
SEEDS = 3
DURATION = 40.0
QUICK_SIZES: Sequence[int] = (24,)
QUICK_CHURN_LEVELS: Sequence[int] = (0, 3)
QUICK_SEEDS = 1

LOCALITY = 4          # id-distance each process messages within
MESSAGE_RATE = 0.2    # sends per process per time unit
CHECKPOINT_RATE = 0.02  # autonomous initiations per process per time unit

ALGORITHMS: Dict[str, Type[CheckpointProcess]] = {
    "leu-bhargava": CheckpointProcess,
    "cooperative": CooperativeProcess,
}


def quick_mode() -> bool:
    """True when the reduced CI sweep was requested via ``ECHURN_QUICK``."""
    return os.environ.get("ECHURN_QUICK", "") not in ("", "0")


def _schedule_churn(sim, cls: Type[CheckpointProcess], n: int, churn: int,
                    duration: float) -> None:
    """Interleave ``churn`` joins and ``churn`` leaves across the run's middle.

    Joins admit brand-new pids ``n .. n+churn-1``; leaves retire the highest
    seed pids, each handing its obligations to a distinct low pid (low pids
    never leave, so every successor outlives the run).
    """
    for k in range(churn):
        join_at = duration * (0.20 + 0.55 * k / max(churn, 1))
        leave_at = duration * (0.30 + 0.55 * k / max(churn, 1))
        sim.scheduler.at(
            join_at,
            lambda pid=n + k: sim.join(cls(pid, None)),
            label=f"churn join P{n + k}",
        )
        sim.scheduler.at(
            leave_at,
            lambda pid=n - 1 - k, succ=k: sim.leave(pid, successor=succ),
            label=f"churn leave P{n - 1 - k}",
        )


def churn_row(name: str, cls: Type[CheckpointProcess], n: int, churn: int,
              seeds: int, duration: float) -> Dict[str, Any]:
    """One sweep point: ``seeds`` runs of ``cls`` at size ``n``, aggregated."""
    committed = aborted = ctrl = 0
    scopes: List[float] = []
    start = time.perf_counter()
    for seed in range(seeds):
        sim, procs = build_sim(
            n=n, seed=seed, cls=cls, delay=UniformDelay(0.2, 0.6),
        )
        _schedule_churn(sim, cls, n, churn, duration)
        RandomPeerWorkload(
            message_rate=MESSAGE_RATE,
            duration=duration,
            step_rate=0.0,
            checkpoint_rate=CHECKPOINT_RATE,
            locality=LOCALITY,
        ).install(sim, procs)
        sim.run(until=duration * 3, max_events=4_000_000)
        stats = collect(sim)
        committed += stats.instances_committed
        aborted += stats.instances_aborted
        ctrl += stats.control_messages
        if name == "cooperative":
            # The commit record carries the snapshot group's size.
            scopes.extend(
                e.fields["group"]
                for e in sim.trace.index.by_kind(T.K_INSTANCE_COMMIT)
            )
        else:
            scopes.extend(stats.forced_per_instance)
        # The churn-tolerant battery: mid-trace joiners, departed leavers.
        check_c1_from_trace(sim.trace)
    return {
        "algorithm": name,
        "n": n,
        "joins": churn,
        "leaves": churn,
        "seeds": seeds,
        "committed": committed,
        "aborted": aborted,
        "ctrl_per_commit": round(ctrl / committed, 2) if committed else 0.0,
        "mean_scope": round(sum(scopes) / len(scopes), 2) if scopes else 0.0,
        "c1_ok": True,
        "wall_s": round(time.perf_counter() - start, 2),
    }


def experiment_churn() -> List[Dict[str, Any]]:
    """The E-CHURN table (see EXPERIMENTS.md)."""
    sizes = QUICK_SIZES if quick_mode() else SIZES
    churn_levels = QUICK_CHURN_LEVELS if quick_mode() else CHURN_LEVELS
    seeds = QUICK_SEEDS if quick_mode() else SEEDS
    duration = DURATION
    rows: List[Dict[str, Any]] = []
    for n in sizes:
        for churn in churn_levels:
            for name, cls in ALGORITHMS.items():
                rows.append(churn_row(name, cls, n, churn, seeds, duration))
    return rows
