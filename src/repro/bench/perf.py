"""E-PERF — the snapshot engine's checkpoint-throughput and sweep-parallelism wins.

Three measurements, reported as one table (and ``BENCH_PERF.json``):

1. **Checkpoint ops/sec** — the paper's two-slot discipline exercised as a
   tight loop (``take_new`` → read ``newchkpt`` → ``commit_new`` → read
   ``oldchkpt``) against the deep-copy baseline backend and the
   snapshot-backed backend, at state sizes n=64 and n=128 blocks.  The
   workload mutates a small hot section each cycle and reuses the rest of
   the state from the previous (frozen) checkpoint — the access pattern
   every checkpointing process in this repo has: mostly-stable state,
   small per-interval drift.
2. **Delta encoding** — bytes of a full snapshot vs the structural delta
   between successive checkpoints of the same key.
3. **Parallel sweeps** — wall-clock for an end-to-end simulation sweep run
   serially vs. fanned out over worker processes.  Requested workers are
   capped at the visible CPU count (``workers_effective``): on a
   single-core container the "parallel" run short-circuits to the serial
   loop rather than losing to process spawn + pickling, and the row
   records the honest CPU count either way.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, List, Sequence

from repro.bench.parallel import effective_workers, run_sweep
from repro.stable import (
    CheckpointStore,
    DeepCopyStableStorage,
    InMemoryStableStorage,
    SnapshotEngine,
)

# Sweep geometry for the parallelism measurement (module-level so the
# serial and parallel runs are guaranteed to do identical work).
SWEEP_POINTS: Sequence[int] = (6, 6, 6, 6)
SWEEP_SEED = 20_88


def make_state(n: int) -> Dict[str, Any]:
    """A checkpointable application state with ``n`` cold blocks."""
    return {
        "blocks": {f"b{i}": list(range(i, i + 16)) for i in range(n)},
        "hot": {"cycle": 0, "inbox": []},
    }


def checkpoint_cycles(storage, n: int, cycles: int) -> float:
    """Ops/sec for the take→read→commit→read checkpoint cycle.

    Each cycle rebuilds the state the way a real process does: the cold
    ``blocks`` sub-tree is carried over from the previous checkpoint's
    (possibly frozen) state, only the hot section is new.  One "op" is one
    full cycle.
    """
    store = CheckpointStore(storage)
    store.initialize(make_state(n))
    start = time.perf_counter()
    for cycle in range(cycles):
        previous = store.oldchkpt.state
        state = {
            "blocks": previous["blocks"],
            "hot": {"cycle": cycle + 1, "inbox": [cycle]},
        }
        store.take_new(seq=cycle + 2, state=state, made_at=float(cycle))
        assert store.newchkpt.state["hot"]["cycle"] == cycle + 1
        store.commit_new()
        assert store.oldchkpt.state["hot"]["cycle"] == cycle + 1
    elapsed = time.perf_counter() - start
    return cycles / elapsed


def delta_stats(n: int, cycles: int = 10) -> Dict[str, Any]:
    """Full-snapshot vs delta-encoded bytes across successive checkpoints."""
    engine = SnapshotEngine(intern=True, track_deltas=True)
    previous = make_state(n)
    engine.store("ckpt", previous)
    for cycle in range(cycles):
        engine.store(
            "ckpt",
            {"blocks": previous["blocks"], "hot": {"cycle": cycle, "inbox": [cycle]}},
        )
    stats = engine.stats()
    stats["savings"] = 1.0 - stats["delta_bytes"] / max(stats["full_bytes"], 1)
    return stats


def sweep_point(n_procs: int, seed: int) -> Dict[str, Any]:
    """One end-to-end simulation for the parallel-sweep measurement.

    Module-level (picklable) and seeded only through its arguments, so the
    result is identical no matter which worker runs it.
    """
    from repro.testing import build_sim, run_random_workload

    sim, procs = build_sim(n=n_procs, seed=seed)
    # Long enough that the per-point work dwarfs worker start-up cost.
    run_random_workload(sim, procs, duration=600.0, checkpoint_rate=0.1, max_events=2_000_000)
    committed = sum(len(p.committed_history) for p in procs.values())
    return {
        "seed": seed,
        "events": sim.scheduler.events_processed,
        "committed": committed,
    }


def measure_sweep(workers: int) -> tuple:
    """(wall_seconds, rows) for the standard sweep at a worker count."""
    start = time.perf_counter()
    rows = run_sweep(sweep_point, SWEEP_POINTS, workers=workers, base_seed=SWEEP_SEED)
    return time.perf_counter() - start, rows


def experiment_perf(
    sizes: Sequence[int] = (64, 128),
    cycles: int = 150,
    sweep_workers: int = 2,
) -> List[Dict[str, Any]]:
    """The E-PERF table (see EXPERIMENTS.md)."""
    rows: List[Dict[str, Any]] = []
    for n in sizes:
        deep = checkpoint_cycles(DeepCopyStableStorage(), n, cycles)
        snap = checkpoint_cycles(InMemoryStableStorage(), n, cycles)
        rows.append(
            {
                "metric": "checkpoint_ops",
                "n": n,
                "cycles": cycles,
                "deepcopy_ops": round(deep, 1),
                "snapshot_ops": round(snap, 1),
                "speedup": round(snap / deep, 2),
            }
        )
    for n in sizes:
        stats = delta_stats(n)
        rows.append(
            {
                "metric": "delta_encoding",
                "n": n,
                "full_bytes": stats["full_bytes"],
                "delta_bytes": stats["delta_bytes"],
                "savings": round(stats["savings"], 4),
            }
        )
    serial_s, serial_rows = measure_sweep(workers=1)
    parallel_s, parallel_rows = measure_sweep(workers=sweep_workers)
    rows.append(
        {
            "metric": "parallel_sweep",
            "points": len(SWEEP_POINTS),
            "workers": sweep_workers,
            # Workers that actually ran: capped at the visible CPU count, so
            # a 1-core container degrades to the serial loop instead of
            # paying process spawn + pickling for nothing.
            "workers_effective": effective_workers(sweep_workers, len(SWEEP_POINTS)),
            "serial_s": round(serial_s, 3),
            "parallel_s": round(parallel_s, 3),
            "speedup": round(serial_s / parallel_s, 2),
            "cpus": os.cpu_count() or 1,
            "deterministic": serial_rows == parallel_rows,
        }
    )
    return rows
