"""Ablation and scaling experiments beyond the paper's own artifacts.

DESIGN.md calls out several design dimensions worth quantifying:

* **E-SCALE** — how instance cost (tree size, control messages, latency)
  grows with the system size n;
* **E-ABL-FREQ** — checkpoint frequency vs. the work lost to a rollback
  (the classic checkpoint-interval trade-off, measurable here because the
  application digests its history);
* **E-ABL-DETECT** — failure-detection latency vs. how long survivors stay
  blocked on a crashed peer (the Section 6 rules fire on detection);
* **E-ABL-TOPOLOGY** — how the workload's communication shape (random,
  client-server, pipeline, ring) molds the checkpoint trees;
* **E-OBSERVABILITY** — the trace pipeline itself at scale: streaming sinks
  keep resident trace memory at zero while the incremental index answers
  the analysis-layer query mix far faster than full-trace scans.
"""

from __future__ import annotations

import os
import tempfile
import time
from typing import Any, Dict, List

from repro.analysis import check_recovery_line, collect, reconstruct_trees
from repro.core import ProtocolConfig
from repro.failure import FailureInjector
from repro.net import UniformDelay
from repro.sim import JsonlStreamSink, MetricsSink, trace as T
from repro.testing import build_sim, run_random_workload
from repro.workloads import (
    ClientServerWorkload,
    PipelineWorkload,
    RandomPeerWorkload,
    RingWorkload,
)


def experiment_scale(sizes=(4, 8, 16, 32), seeds: int = 3) -> List[Dict[str, Any]]:
    """E-SCALE: per-instance cost as the system grows.

    An instance's scope is the *transitive dependency set since the last
    checkpoints*, so the meaningful scaling regime bounds that window:
    communication is neighbourhood-local (peers within id-distance 2) and
    the measured instance fires after a short traffic burst.  The instance
    cost then tracks the dependency neighbourhood, not n — the regime where
    the paper's minimality beats the all-process Tamir-Séquin approach.
    A long-window run is reported alongside for contrast: given enough
    unchecked traffic, dependencies percolate and any correct coordinated
    scheme must recruit almost everyone.
    """
    rows = []
    for n in sizes:
        burst_forced: List[int] = []
        burst_depths: List[int] = []
        long_forced: List[int] = []
        for seed in range(seeds):
            # Short burst: 2 time units of local traffic, then one instance.
            sim, procs = build_sim(n=n, seed=seed, delay=UniformDelay(0.4, 0.9))
            RandomPeerWorkload(message_rate=1.0, duration=2.0,
                               locality=2).install(sim, procs)
            sim.scheduler.at(6.0, lambda p=procs, k=n // 2: p[k].initiate_checkpoint())
            sim.run(max_events=800000)
            trees = reconstruct_trees(sim.trace)
            tree = next(t for t in trees.values() if t.kind == "checkpoint")
            burst_forced.append(len(tree.participants))
            burst_depths.append(tree.depth())

            # Long window: 30 units of local traffic with sparse checkpoints.
            sim, procs = build_sim(n=n, seed=seed + 500, delay=UniformDelay(0.4, 0.9))
            RandomPeerWorkload(message_rate=1.0, duration=30.0,
                               checkpoint_rate=0.03, locality=2).install(sim, procs)
            sim.run(max_events=800000)
            stats = collect(sim)
            long_forced.extend(stats.forced_per_instance)
        rows.append({
            "n": n,
            "burst_mean_forced": sum(burst_forced) / len(burst_forced),
            "burst_max_forced": max(burst_forced),
            "burst_mean_depth": sum(burst_depths) / len(burst_depths),
            "long_window_mean_forced": (
                sum(long_forced) / len(long_forced) if long_forced else 0.0
            ),
        })
    return rows


def experiment_observability(
    sizes=(32, 64), seed: int = 0, duration: float = 6.0, repeats: int = 50
) -> List[Dict[str, Any]]:
    """E-OBSERVABILITY: the trace pipeline itself, at 2x the E-SCALE sizes.

    For each n, the same seeded workload runs twice: once with the default
    in-memory sink (every event retained, index attached for analysis), and
    once streaming to jsonl + rolling metrics (no event retained).  The
    runs are deterministic, so the streamed line count must equal the
    in-memory event count — the table shows memory boundedness directly.

    The analysis-speed column times the consumers' common query mix —
    by-kind lookups over commits, rollbacks, sends and instance lifecycle —
    as a naive full-trace scan vs. the incremental ``TraceIndex``.
    """
    kinds = (
        T.K_CHKPT_COMMIT, T.K_ROLLBACK, T.K_SEND,
        T.K_INSTANCE_START, T.K_INSTANCE_COMMIT,
    )
    rows = []
    for n in sizes:
        def workload(sim, procs):
            RandomPeerWorkload(message_rate=1.0, duration=duration,
                               checkpoint_rate=0.05, locality=2).install(sim, procs)
            sim.scheduler.at(duration, lambda p=procs, k=n // 2: p[k].initiate_checkpoint())
            sim.run(max_events=2000000)

        # Run 1: default in-memory pipeline + incremental index.
        sim, procs = build_sim(n=n, seed=seed, delay=UniformDelay(0.4, 0.9))
        workload(sim, procs)
        events = len(sim.trace)
        snapshot = sim.trace.events  # the naive scans' input
        index = sim.trace.index

        begin = time.perf_counter()
        for _ in range(repeats):
            for kind in kinds:
                scan_hits = len([e for e in snapshot if e.kind == kind])
        scan_ms = (time.perf_counter() - begin) * 1000.0

        begin = time.perf_counter()
        for _ in range(repeats):
            for kind in kinds:
                index_hits = index.count(kind)
        indexed_ms = (time.perf_counter() - begin) * 1000.0
        assert scan_hits == index_hits  # same answers, different cost

        # Run 2: identical seed, streaming pipeline — nothing retained.
        handle, path = tempfile.mkstemp(suffix=".jsonl")
        os.close(handle)
        try:
            stream = JsonlStreamSink(path)
            metrics = MetricsSink()
            sim2, procs2 = build_sim(n=n, seed=seed, delay=UniformDelay(0.4, 0.9),
                                     sinks=[stream, metrics])
            workload(sim2, procs2)
            sim2.trace.close()
            rows.append({
                "n": n,
                "events": events,
                "inmemory_retained": sim.trace.retained_events,
                "stream_retained": sim2.trace.retained_events,
                "stream_written": stream.written,
                "stream_commits": metrics.checkpoints_committed,
                "scan_ms": scan_ms,
                "indexed_ms": indexed_ms,
                "speedup": scan_ms / indexed_ms if indexed_ms else float("inf"),
            })
        finally:
            os.unlink(path)
    return rows


def experiment_checkpoint_frequency(
    intervals=(5.0, 10.0, 20.0, 40.0), seeds: int = 4
) -> List[Dict[str, Any]]:
    """E-ABL-FREQ: checkpoint interval vs. work lost per rollback.

    "Work" is the application's local-step + consume count; the loss of a
    rollback is how much of it the restored state forgets.
    """
    rows = []
    for interval in intervals:
        losses: List[int] = []
        checkpoints = 0
        for seed in range(seeds):
            sim, procs = build_sim(
                n=5, seed=seed, delay=UniformDelay(0.4, 0.9),
                config=ProtocolConfig(checkpoint_interval=interval),
            )
            RandomPeerWorkload(message_rate=1.0, duration=80.0,
                               step_rate=2.0).install(sim, procs)
            # One injected error late in the run.
            target = procs[seed % 5]
            def inject(proc=target, sink=losses):
                before = proc.app.steps + proc.app.consumed
                proc.initiate_rollback()
                after = proc.app.steps + proc.app.consumed
                sink.append(before - after)
            sim.scheduler.at(70.0, inject)
            sim.run(until=300.0, max_events=800000)
            checkpoints += len(sim.trace.of_kind(T.K_CHKPT_COMMIT))
        rows.append({
            "checkpoint_interval": interval,
            "mean_work_lost_per_rollback": sum(losses) / len(losses),
            "checkpoints_committed_per_seed": checkpoints // seeds,
        })
    return rows


def experiment_detection_latency(
    latencies=(0.5, 2.0, 8.0, 20.0), seeds: int = 4
) -> List[Dict[str, Any]]:
    """E-ABL-DETECT: detector latency vs. survivor blocked time."""
    rows = []
    for latency in latencies:
        blocked = 0.0
        for seed in range(seeds):
            sim, procs = build_sim(
                n=5, seed=seed, delay=UniformDelay(0.4, 0.9),
                config=ProtocolConfig(failure_resilience=True),
                detector_latency=latency, spoolers=True,
            )
            inj = FailureInjector(sim)
            inj.crash_at(20.0, pid=seed % 5)
            inj.recover_at(60.0, pid=seed % 5)
            run_random_workload(sim, procs, duration=70.0, message_rate=1.0,
                                checkpoint_rate=0.06, error_rate=0.01,
                                horizon=400.0, max_events=800000)
            alive = [p for p in procs.values() if not p.crashed]
            check_recovery_line(alive)
            stats = collect(sim)
            blocked += stats.send_blocked_time + stats.comm_blocked_time
        rows.append({
            "detection_latency": latency,
            "blocked_time_per_run": blocked / seeds,
        })
    return rows


def experiment_topology(seeds: int = 3) -> List[Dict[str, Any]]:
    """E-ABL-TOPOLOGY: workload shape vs. checkpoint-tree geometry."""
    shapes = {
        "random-peer": lambda: RandomPeerWorkload(message_rate=1.0, duration=30.0),
        "client-server": lambda: ClientServerWorkload(
            servers=[0], request_rate=1.0, duration=30.0),
        "pipeline": lambda: PipelineWorkload(
            stages=[0, 1, 2, 3, 4, 5], item_rate=1.0, duration=30.0),
        "ring": lambda: RingWorkload(tokens=2, hold_time=0.4, duration=30.0),
    }
    rows = []
    for name, factory in shapes.items():
        forced: List[int] = []
        depths: List[int] = []
        for seed in range(seeds):
            sim, procs = build_sim(n=6, seed=seed, delay=UniformDelay(0.3, 0.7))
            factory().install(sim, procs)
            sim.scheduler.at(20.0, lambda p=procs: p[3].initiate_checkpoint())
            sim.run(max_events=400000)
            trees = reconstruct_trees(sim.trace)
            tree = next(t for t in trees.values()
                        if t.kind == "checkpoint" and t.root == 3)
            forced.append(len(tree.participants))
            depths.append(tree.depth())
        rows.append({
            "workload": name,
            "mean_forced": sum(forced) / len(forced),
            "mean_depth": sum(depths) / len(depths),
            "max_depth": max(depths),
        })
    return rows
