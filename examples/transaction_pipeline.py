#!/usr/bin/env python3
"""A fault-tolerant transaction pipeline.

The scenario the paper's introduction motivates: a multi-stage processing
system where a transient error at one stage must not corrupt downstream
state, and periodic checkpoints must not freeze the pipeline.

Stages:  ingest(P0) -> validate(P1) -> settle(P2) -> archive(P3)

We run two configurations over the same traffic:

* the base Leu-Bhargava algorithm with a periodic checkpoint timer, plus a
  mid-run transient error at the settlement stage;
* the Section 3.5.3 extension, demonstrating the pipeline never blocks on
  checkpointing.

Run:  python examples/transaction_pipeline.py
"""

from repro import CheckpointProcess, ExtendedCheckpointProcess, ProtocolConfig, Simulation
from repro.analysis import check_app_states, check_recovery_line, collect
from repro.net import UniformDelay
from repro.workloads import PipelineWorkload


def run(cls, label: str, inject_error: bool) -> None:
    sim = Simulation(seed=7, delay_model=UniformDelay(0.3, 0.8))
    config = ProtocolConfig(checkpoint_interval=15.0)
    procs = {i: sim.add_node(cls(i, config)) for i in range(4)}
    sim.run(until=0.0)

    # Transactions enter at P0 and flow to P3.
    PipelineWorkload(stages=[0, 1, 2, 3], item_rate=1.5, duration=60.0,
                     stage_delay=0.1).install(sim, procs)

    if inject_error:
        # A transient fault at the settlement stage mid-run: its rollback
        # must drag the downstream archive stage (which consumed its
        # outputs) but leave upstream ingest/validate alone when possible.
        sim.scheduler.at(30.0, lambda: procs[2].initiate_rollback())

    # The periodic checkpoint timer re-arms forever; run to a horizon.
    sim.run(until=120.0, max_events=500000)

    stats = collect(sim)
    print(f"--- {label} ---")
    print(f"  transactions archived: {procs[3].app.consumed}")
    print(f"  checkpoints committed: {stats.checkpoints_committed}")
    print(f"  rollbacks:             {stats.rollbacks}")
    print(f"  send-blocked time:     {stats.send_blocked_time:.2f}")
    print(f"  control messages:      {stats.control_messages}")

    check_recovery_line(procs.values())
    check_app_states(procs.values())
    print("  consistency checks passed ✔\n")


def main() -> None:
    run(CheckpointProcess, "base algorithm, with a settlement-stage fault",
        inject_error=True)
    run(ExtendedCheckpointProcess,
        "3.5.3 extension (non-blocking checkpoints), fault-free",
        inject_error=False)


if __name__ == "__main__":
    main()
