#!/usr/bin/env python3
"""A real networked cluster: the same protocol, now over TCP sockets.

Four checkpoint processes run on the live asyncio kernel, each with its own
on-disk stable storage and JSONL trace file, exchanging length-prefixed
JSON frames through per-node localhost servers.  Mid-run, one node is
killed for real — its server closes, peers' frames bounce to spoolers or
drops — and later restarts from its storage directory, rejoining via the
Section 6 recovery rules.  Afterwards the per-node traces are merged and
the paper's C1 consistency definition is checked against the live run.

Everything protocol-side is byte-identical to the simulator examples: only
the kernel under ``node.sim`` changed.

Run:  python examples/live_cluster.py
"""

import asyncio
import tempfile

from repro.analysis.consistency import check_c1_from_trace
from repro.core import ProtocolConfig
from repro.runtime import Cluster
from repro.workloads import RandomPeerWorkload

N = 4
DURATION = 24.0      # protocol time units
TIME_SCALE = 0.02    # real seconds per unit -> ~0.6 wall seconds of traffic


async def main_async(root: str) -> None:
    config = ProtocolConfig(failure_resilience=True, checkpoint_interval=8.0)
    cluster = Cluster(
        n=N,
        root=root,
        seed=7,
        transport="tcp",
        config=config,
        time_scale=TIME_SCALE,
    )
    RandomPeerWorkload(message_rate=1.0, duration=DURATION).install(
        cluster.runtime, cluster.procs
    )

    cluster.schedule_kill(2, at=7.0)
    cluster.schedule_restart(2, at=13.0)

    await cluster.start()
    print(f"cluster up: {N} nodes on ports {sorted(cluster.transport.ports.values())}")
    await cluster.run_for(DURATION)
    await cluster.run_for(6.0)  # settle: in-flight frames, decision propagation
    await cluster.shutdown()

    summary = cluster.summary()
    print(
        f"ran to t={summary['now']:.1f}: "
        f"{summary['normal_sent']} normal + {summary['control_sent']} control sent, "
        f"{summary['delivered']} delivered, {summary['dropped']} dropped, "
        f"{summary['spooled']} spooled"
    )
    print(
        "committed checkpoints:",
        " ".join(f"P{pid}:{n}" for pid, n in sorted(cluster.committed_counts().items())),
    )

    index = cluster.merged_index()
    check_c1_from_trace(index, sorted(cluster.procs))
    print(f"merged {index.events_indexed} trace events from {len(cluster.router.paths)} files")
    print("live-run consistency checks passed (C1 over the recovery line)")


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="live-cluster-") as root:
        asyncio.run(main_async(root))


if __name__ == "__main__":
    main()
