#!/usr/bin/env python3
"""A cluster surviving crashes and a network partition (paper Section 6).

Six peers gossip under a random workload with periodic checkpointing while
the environment misbehaves:

* t=20:   two processes crash (clean fail-stop);
* t=45/50: they restart from stable storage and re-join via rule 3;
* t=70:   the network splits 4 / 2 — the minority is regarded failed;
* t=95:   the partition heals and the minority reintegrates.

At the end, the consistency oracles confirm the survivors always held a
consistent recovery line.

Run:  python examples/resilient_cluster.py
"""

from repro import (
    CheckpointProcess,
    FailureDetector,
    FailureInjector,
    PartitionCoordinator,
    ProtocolConfig,
    Simulation,
    VoteRegistry,
)
from repro.analysis import check_app_states, check_recovery_line, collect
from repro.net import ExponentialDelay
from repro.workloads import RandomPeerWorkload

N = 6


def main() -> None:
    sim = Simulation(seed=11, delay_model=ExponentialDelay(mean=0.8))
    config = ProtocolConfig(failure_resilience=True, checkpoint_interval=12.0)
    procs = {i: sim.add_node(CheckpointProcess(i, config)) for i in range(N)}

    # The Section 6 machinery: failure detector (assumption c), replicated
    # message spoolers (assumption e), and weighted-vote partition handling.
    FailureDetector(sim, detection_latency=2.0)
    for i in range(N):
        sim.network.install_spoolers(i, [(i + 1) % N, (i + 2) % N])
    coordinator = PartitionCoordinator(sim, VoteRegistry.uniform(range(N)))
    sim.run(until=0.0)

    RandomPeerWorkload(message_rate=1.0, duration=110.0,
                       error_rate=0.005).install(sim, procs)

    injector = FailureInjector(sim)
    injector.crash_at(20.0, pid=1)
    injector.crash_at(22.0, pid=4)
    injector.recover_at(45.0, pid=1)
    injector.recover_at(50.0, pid=4)
    coordinator.schedule_split(70.0, [{0, 1, 2, 3}, {4, 5}])
    coordinator.schedule_heal(95.0)

    sim.run(until=500.0, max_events=800000)

    stats = collect(sim)
    print("cluster ran through 2 crashes + 1 partition")
    print(f"  checkpoints committed: {stats.checkpoints_committed}")
    print(f"  rollbacks performed:   {stats.rollbacks}")
    print(f"  messages (normal/ctl): {stats.normal_messages}/{stats.control_messages}")
    print(f"  spooled while down:    {sim.network.spooled}")
    for pid, proc in sorted(procs.items()):
        state = "down" if proc.crashed else "up"
        print(f"  P{pid}: {state}, committed checkpoint seq {proc.store.oldchkpt.seq}")

    alive = [p for p in procs.values() if not p.crashed]
    check_recovery_line(alive)
    check_app_states(alive)
    print("consistency checks passed ✔")


if __name__ == "__main__":
    main()
