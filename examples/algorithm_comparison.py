#!/usr/bin/env python3
"""Run the Section 5 comparison interactively.

Puts all six algorithms (Leu-Bhargava base + extension, Koo-Toueg,
Tamir-Séquin, Chandy-Lamport, Barigazzi-Strigini) on the identical random
workload and prints the measured comparison table — the reproduction of the
paper's qualitative Section 5 as numbers.

Run:  python examples/algorithm_comparison.py          # quick (2 seeds)
      python examples/algorithm_comparison.py --full   # the E-T5 settings
"""

import sys

from repro.bench.experiments import experiment_table5
from repro.bench.harness import format_table


def main() -> None:
    full = "--full" in sys.argv
    rows = experiment_table5(
        n=8 if full else 6,
        seeds=5 if full else 2,
        duration=60.0 if full else 30.0,
    )
    print(format_table(rows, title="Section 5 comparison (measured)"))
    print()
    print("How to read it (the paper's claims):")
    print(" * tamir-sequin forces every process (mean_forced = n-1);")
    print("   the tree-based algorithms force only dependents.")
    print(" * koo-toueg rejects interfering instances (rejected > 0);")
    print("   leu-bhargava completes them all concurrently (rejected = 0).")
    print(" * barigazzi-strigini's atomic sends and full blocking dominate")
    print("   the blocking columns; the 3.5.3 extension eliminates")
    print("   checkpoint send-blocking entirely (send_blocked = 0).")
    print(" * only the leu-bhargava rows ran on non-FIFO channels;")
    print("   every baseline needed a FIFO transport to be correct.")


if __name__ == "__main__":
    main()
