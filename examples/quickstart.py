#!/usr/bin/env python3
"""Quickstart: four processes, messages, one checkpoint, one failure.

Walks through the library's core loop:

1. build a simulated distributed system on non-FIFO channels;
2. exchange application messages;
3. let one process initiate a coordinated checkpoint — watch the minimal
   tree form;
4. inject a transient error — watch the rollback cascade restore a
   consistent state;
5. verify the run with the built-in consistency oracles.

Run:  python examples/quickstart.py
"""

from repro import CheckpointProcess, Simulation
from repro.analysis import (
    check_quiescent,
    check_recovery_line,
    collect,
    reconstruct_trees,
    space_time,
)
from repro.net import ExponentialDelay


def main() -> None:
    # 1. A 4-process system; message delays are exponential, so messages
    #    can arrive out of order (the paper's non-FIFO model).
    sim = Simulation(seed=42, delay_model=ExponentialDelay(mean=1.0))
    procs = {i: sim.add_node(CheckpointProcess(i)) for i in range(4)}
    sim.run(until=0.0)  # start the processes

    # 2. Some application traffic: P0 -> P1 -> P2.  P3 stays quiet for now.
    sim.scheduler.at(1.0, lambda: procs[0].send_app_message(1, "order #17"))
    sim.scheduler.at(2.5, lambda: procs[1].send_app_message(2, "ship #17"))

    # 3. P2 decides to checkpoint.  Its state depends (transitively) on P1
    #    and P0, so the protocol recruits exactly those two — and not P3,
    #    which exchanged nothing with anyone.
    sim.scheduler.at(6.0, lambda: procs[2].initiate_checkpoint())
    sim.run()

    trees = reconstruct_trees(sim.trace)
    checkpoint_tree = next(t for t in trees.values() if t.kind == "checkpoint")
    print("checkpoint tree (root initiated):")
    print(checkpoint_tree.render())
    print(f"decision: {checkpoint_tree.decided}")
    for pid, proc in sorted(procs.items()):
        print(f"  P{pid}: last committed checkpoint seq {proc.store.oldchkpt.seq}")

    # 4. Later, P0 detects a transient error and rolls back.  Everyone whose
    #    state depends on P0's undone messages rolls back with it.
    sim.scheduler.at(20.0, lambda: procs[0].send_app_message(1, "tainted"))
    sim.scheduler.at(25.0, lambda: procs[0].initiate_rollback())
    sim.run()

    rollback_tree = next(t for t in reconstruct_trees(sim.trace).values()
                         if t.kind == "rollback")
    print("\nrollback tree (who had to roll back):")
    print(rollback_tree.render())

    # 5. The oracles: every process resumed, and the system state satisfies
    #    the paper's consistency definitions (C1, C2, Definition 4).
    check_quiescent(procs.values())
    check_recovery_line(procs.values())
    print("\nconsistency checks passed ✔")

    stats = collect(sim)
    print(f"\nrun stats: {stats.as_row()}")

    # Bonus: the whole run as a space-time diagram (the paper's Figures 1-4
    # are exactly this kind of drawing).
    print("\nspace-time diagram of the run:")
    print(space_time(sim.trace, pids=sorted(procs), width=72))


if __name__ == "__main__":
    main()
