#!/usr/bin/env python3
"""Re-draw the paper's figures from live runs.

Replays the scripted scenarios of Figures 2, 3 and 4 and renders each as an
ASCII space-time diagram — the same kind of process timing drawing the
paper uses — together with the reconstructed instance trees.

Run:  python examples/paper_figures.py
"""

from repro import CheckpointProcess, Simulation
from repro.analysis import reconstruct_trees, space_time
from repro.net import FixedDelay
from repro.workloads import (
    ScriptedWorkload,
    figure2_steps,
    figure3_steps,
    figure4_steps,
)


def replay(title, steps, first, last, seed=1):
    sim = Simulation(seed=seed, delay_model=FixedDelay(0.5))
    procs = {i: sim.add_node(CheckpointProcess(i))
             for i in range(first, last + 1)}
    sim.run(until=0.0)
    ScriptedWorkload(steps).install(sim, procs)
    sim.run()
    print(f"=== {title} ===")
    print(space_time(sim.trace, pids=sorted(procs), width=68))
    for tree in reconstruct_trees(sim.trace).values():
        print(f"\n{tree.kind} instance {tree.tree} -> {tree.decided}:")
        print(tree.render())
    print()
    return sim, procs


def main() -> None:
    sim, procs = replay("Figure 2 — numbering and labels",
                        figure2_steps(), 0, 1)
    labels = [r.label for r in procs[0].ledger.sent]
    print(f"labels of m, l, x, y, z: {labels}  (paper: [1, 2, 3, 3, 4])\n")

    replay("Figure 3 / Example 1 — one instance, chain tree",
           figure3_steps(), 1, 4)
    replay("Figure 4 / Example 2 — two interfering instances",
           figure4_steps(), 1, 4, seed=2)


if __name__ == "__main__":
    main()
